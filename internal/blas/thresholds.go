package blas

import "math"

// Parallel-dispatch thresholds compare flop counts like 2·m·n·k against a
// constant. The products are computed with saturating arithmetic: for the
// paper's larger shapes (m = 10⁵⁻⁶ rows) a plain int product can overflow
// on 32-bit builds — or for extreme inputs even on 64-bit — and a wrapped
// negative count would silently force the sequential path (or, worse, a
// nonsense chunk size).

// satMul returns a·b for non-negative a, b, saturating at math.MaxInt.
func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// mulFlops returns the saturating product of its arguments; use it for
// flop-count threshold tests, e.g. mulFlops(2, m, n, k).
func mulFlops(dims ...int) int {
	p := 1
	for _, d := range dims {
		p = satMul(p, d)
	}
	return p
}
