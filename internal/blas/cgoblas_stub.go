//go:build !cgoblas || !cgo

package blas

// Stdlib-only builds (no cgoblas tag, or cgo disabled) still register
// the "cgoblas" name so backend selection stays portable across builds:
// the handle resolves to the native implementation and reports
// Effective() == "native", which is how callers (and the build-tag
// fallback test) observe that the real binding is absent. This is the
// crowdsurf gpu.go + ffi_noop no-op-fallback pattern.
func init() { registerFallback("cgoblas", "native", nativeImpl) }
