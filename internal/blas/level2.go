package blas

import (
	"fmt"

	"repro/internal/parallel"
	"repro/mat"
)

// gemvParallelThreshold is the minimum number of matrix elements before a
// Level-2 kernel fans out across cores; below it goroutine startup costs
// more than the memory traffic it hides.
const gemvParallelThreshold = 1 << 15

// Gemv computes y = alpha·op(A)·x + beta·y. The engine e bounds the
// parallel width (nil selects the default engine).
func Gemv(e *parallel.Engine, t Transpose, alpha float64, a *mat.Dense, x []float64, beta float64, y []float64) {
	rows, cols := dims(t, a)
	if len(x) != cols || len(y) != rows {
		panic(fmt.Sprintf("blas: Gemv op(A) %d×%d with x[%d], y[%d]", rows, cols, len(x), len(y)))
	}
	if t == NoTrans {
		gemvN(e, alpha, a, x, beta, y)
	} else {
		gemvT(e, alpha, a, x, beta, y)
	}
}

func gemvN(e *parallel.Engine, alpha float64, a *mat.Dense, x []float64, beta float64, y []float64) {
	n := a.Cols
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Stride : i*a.Stride+n]
			var s0, s1, s2, s3 float64
			j := 0
			for ; j+4 <= n; j += 4 {
				s0 += row[j] * x[j]
				s1 += row[j+1] * x[j+1]
				s2 += row[j+2] * x[j+2]
				s3 += row[j+3] * x[j+3]
			}
			for ; j < n; j++ {
				s0 += row[j] * x[j]
			}
			y[i] = alpha*(s0+s1+s2+s3) + beta*y[i]
		}
	}
	if a.Rows*a.Cols < gemvParallelThreshold {
		body(0, a.Rows)
		return
	}
	minChunk := gemvParallelThreshold / (a.Cols + 1)
	e.For(a.Rows, minChunk+1, body)
}

func gemvT(e *parallel.Engine, alpha float64, a *mat.Dense, x []float64, beta float64, y []float64) {
	for j := range y {
		y[j] *= beta
	}
	if a.Rows*a.Cols < gemvParallelThreshold || e.Workers() == 1 {
		for i := 0; i < a.Rows; i++ {
			xi := alpha * x[i]
			if xi == 0 {
				continue
			}
			row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			for j, v := range row {
				y[j] += xi * v
			}
		}
		return
	}
	// Parallel over row blocks with pooled per-block private accumulators,
	// then a sequential reduction (y is short: len == a.Cols).
	minChunk := gemvParallelThreshold / (a.Cols + 1)
	ranges := e.Split(a.Rows, minChunk+1)
	acc := make([][]float64, len(ranges))
	tasks := make([]func(), len(ranges))
	for bi, r := range ranges {
		tasks[bi] = func() {
			buf := mat.GetFloats(a.Cols, true)
			for i := r.Lo; i < r.Hi; i++ {
				xi := alpha * x[i]
				if xi == 0 {
					continue
				}
				row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
				for j, v := range row {
					buf[j] += xi * v
				}
			}
			acc[bi] = buf
		}
	}
	e.Do(tasks...)
	for _, buf := range acc {
		for j, v := range buf {
			y[j] += v
		}
		mat.PutFloats(buf)
	}
}

// Ger computes A += alpha·x·yᵀ. The engine e bounds the parallel width
// (nil selects the default engine).
func Ger(e *parallel.Engine, alpha float64, x, y []float64, a *mat.Dense) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("blas: Ger A %d×%d with x[%d], y[%d]", a.Rows, a.Cols, len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := alpha * x[i]
			if xi == 0 {
				continue
			}
			row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			for j, v := range y {
				row[j] += xi * v
			}
		}
	}
	if a.Rows*a.Cols < gemvParallelThreshold {
		body(0, a.Rows)
		return
	}
	minChunk := gemvParallelThreshold / (a.Cols + 1)
	e.For(a.Rows, minChunk+1, body)
}

// SyrUpper computes the upper triangle of W += alpha·x·xᵀ for symmetric W.
// Only elements W[i][j] with j ≥ i are touched.
func SyrUpper(alpha float64, x []float64, w *mat.Dense) {
	if w.Rows != w.Cols || len(x) != w.Rows {
		panic(fmt.Sprintf("blas: SyrUpper W %d×%d with x[%d]", w.Rows, w.Cols, len(x)))
	}
	if alpha == 0 {
		return
	}
	for i, xi := range x {
		axi := alpha * xi
		if axi == 0 {
			continue
		}
		row := w.Data[i*w.Stride : i*w.Stride+w.Cols]
		for j := i; j < len(x); j++ {
			row[j] += axi * x[j]
		}
	}
}
