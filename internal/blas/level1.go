package blas

import "math"

// Dot returns xᵀy for equal-length contiguous vectors.
//
//repolint:hotpath
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha·x.
//
//repolint:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns ‖x‖₂ with scaling to avoid overflow/underflow.
func Nrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SumSquares returns Σ xᵢ² without scaling; callers that may overflow
// should use Nrm2 instead.
func SumSquares(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Iamax returns the index of the element with the largest absolute value,
// or -1 for an empty vector. Ties break toward the lower index.
func Iamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bv := 0, math.Abs(x[0])
	for i := 1; i < len(x); i++ {
		if av := math.Abs(x[i]); av > bv {
			best, bv = i, av
		}
	}
	return best
}

// Swap exchanges the contents of x and y.
func Swap(x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Swap length mismatch")
	}
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}

// Copy copies x into y.
func Copy(x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Copy length mismatch")
	}
	copy(y, x)
}
