package blas

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// This file is the fixed-shape face of the fused kernel family: a Gram
// computation whose floating-point summation order is a function of the
// row count alone (GramFixed), and panel-granular entry points
// (GramPanelAcc, FusedPanelPivot, ReduceGramSlots) that let an
// out-of-core driver replay exactly the same order one resident panel at
// a time. The schedule helpers (FusedSlots, FusedSlotBounds,
// FusedBlockRows) export the slot/micro-block grid so callers outside
// this package can cut panels only at positions the in-core kernels
// would have visited anyway — the whole bit-identity story of
// internal/ooc rests on these boundaries (DESIGN.md §14).

// FusedBlockRows is the micro-block height of the fused streaming
// kernels. Out-of-core panel boundaries must fall on this grid (relative
// to their slot's lower bound) for the per-panel kernels to reproduce the
// in-core summation order bit for bit.
const FusedBlockRows = fusedBlockRows

// FusedSlots reports the fixed reduction fan-out the fused kernels use
// for an m-row pass — a function of m alone, never of the engine width.
func FusedSlots(m int) int { return fusedSlots(m) }

// FusedSlotBounds reports the half-open row range of slot si of slots
// over m rows, matching the partition the fused kernels use internally.
func FusedSlotBounds(m, slots, si int) (lo, hi int) {
	return fusedSlotBounds(m, slots, si)
}

// GramFixed computes the full symmetric Gram matrix W = AᵀA through the
// fixed-shape slot reduction of the fused kernel family: rows are
// partitioned into FusedSlots(m) slots, each slot accumulates with the
// register-tiled fused SYRK in ascending quad order, and the per-slot
// partials reduce into W in ascending slot index order. Every engine
// width therefore produces bit-identical W — unlike Gram, whose
// summation shape follows the width — making this the Gram of choice for
// paths that promise width determinism (the iterated pivoting loop, and
// the out-of-core driver that replays it panel by panel).
//
// Engines carrying a non-native compute backend delegate to Gram so the
// backend's accumulation semantics (e.g. mixed32's float32 Gram) are
// preserved; the fixed-shape guarantee holds on the native backend.
func GramFixed(e *parallel.Engine, w *mat.Dense, a *mat.Dense) {
	n := a.Cols
	if w.Rows != n || w.Cols != n {
		panic(fmt.Sprintf("blas: GramFixed W %d×%d, want %d×%d", w.Rows, w.Cols, n, n))
	}
	if backendFor(e) != nativeHandle {
		Gram(e, w, a)
		return
	}
	w.Zero()
	m := a.Rows
	if m == 0 || n == 0 {
		return
	}
	sp := trace.BackendRegion(trace.KernelSyrk, nativeHandle.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelSyrk, nativeHandle.traceID, int64(m)*int64(n)*int64(n+1))
	slots := fusedSlots(m)
	wk := e.Workers()
	if wk == 1 || slots == 1 || mulFlops(m, n, n) < gemmParallelFlops {
		// Sequential path: one reusable accumulator, reduced slot by slot
		// in ascending order — the exact summation shape of the parallel
		// path, so width 1 matches width k bit for bit.
		acc := mat.GetWorkspace(n, n, false)
		for si := 0; si < slots; si++ {
			lo, hi := fusedSlotBounds(m, slots, si)
			acc.Zero()
			fusedSyrkRange(a, lo, hi, acc)
			addUpper(w, acc)
		}
		mat.PutWorkspace(acc)
		SymmetrizeFromUpper(w)
		return
	}
	// Parallel path: workers claim contiguous slot subranges with private
	// accumulators; the reduction walks slots in ascending index order
	// regardless of which worker filled them.
	accs := make([]*mat.Dense, slots)
	taskRanges := parallel.Split(slots, wk, 1)
	tasks := make([]func(), len(taskRanges))
	for ti, tr := range taskRanges {
		tasks[ti] = func() {
			for si := tr.Lo; si < tr.Hi; si++ {
				acc := mat.GetWorkspace(n, n, true)
				lo, hi := fusedSlotBounds(m, slots, si)
				fusedSyrkRange(a, lo, hi, acc)
				accs[si] = acc
			}
		}
	}
	e.Do(tasks...)
	for _, acc := range accs {
		addUpper(w, acc)
		mat.PutWorkspace(acc)
	}
	SymmetrizeFromUpper(w)
}

// GramPanelAcc accumulates acc += PᵀP (upper triangle only) for a
// resident row panel P, in exactly the summation order GramFixed uses
// for the same rows: ascending 4-row quads anchored at the panel's first
// row, remainder rows last. Parallelism partitions the accumulator's
// output rows (at even row-pair boundaries), never the summation
// dimension, so the per-element accumulation order — and hence every bit
// of acc — is independent of the engine width.
//
// An out-of-core Gram sweep calls this once per panel with the panel's
// slot accumulator, then reduces the slot accumulators with
// ReduceGramSlots. Bit-identity with GramFixed requires the panel to
// start on its slot's FusedBlockRows grid (schedule contract above).
// Native kernels only: the caller is expected to have pinned the native
// backend (internal/ooc rejects others up front).
func GramPanelAcc(e *parallel.Engine, panel, acc *mat.Dense) {
	n := panel.Cols
	if acc.Rows != n || acc.Cols != n {
		panic(fmt.Sprintf("blas: GramPanelAcc acc %d×%d, want %d×%d", acc.Rows, acc.Cols, n, n))
	}
	if panel.Rows == 0 || n == 0 {
		return
	}
	sp := trace.BackendRegion(trace.KernelSyrk, nativeHandle.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelSyrk, nativeHandle.traceID,
		int64(panel.Rows)*int64(n)*int64(n+1))
	fusedSyrkColsParallel(e, panel, acc)
}

// FusedPanelPivot applies the fused permute→TRSM→Gram pass to one
// resident row panel: every row of the panel is column-gathered through
// perm (nil means identity), solved in place against the upper
// triangular R, and accumulated into acc += PᵀP (upper triangle). It is
// the panel-granular form of the native PermTrsmGram slot kernel: the
// micro-block grid anchors at the panel's first row, so a panel cut on
// its slot's FusedBlockRows grid reproduces the in-core pass bit for
// bit. The permute+TRSM stage parallelizes over micro-blocks (rows are
// independent); the Gram stage partitions accumulator output rows like
// GramPanelAcc. Native kernels only; the caller validates R (see
// PermTrsmGramFused) once per sweep, not per panel.
func FusedPanelPivot(e *parallel.Engine, panel *mat.Dense, perm mat.Perm, r, acc *mat.Dense) {
	rows, n := panel.Rows, panel.Cols
	checkTriangular(r, n, "FusedPanelPivot")
	if acc.Rows != n || acc.Cols != n {
		panic(fmt.Sprintf("blas: FusedPanelPivot acc %d×%d, want %d×%d", acc.Rows, acc.Cols, n, n))
	}
	if perm != nil && len(perm) != n {
		panic(fmt.Sprintf("blas: FusedPanelPivot perm length %d != cols %d", len(perm), n))
	}
	if rows == 0 || n == 0 {
		return
	}
	sp := trace.BackendRegion(trace.KernelFusedTrsmGram, nativeHandle.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelFusedTrsmGram, nativeHandle.traceID,
		int64(rows)*int64(n)*int64(n)+int64(rows)*int64(n)*int64(n+1))
	trace.AddBytesBackend(trace.KernelFusedTrsmGram, nativeHandle.traceID, 2*8*int64(rows)*int64(n))

	// Stage 1 — permute + TRSM, parallel over micro-blocks. Each block's
	// rows are gathered and solved exactly as fusedSlotRange would: the
	// quad grouping anchors at the block start, so the result per row is a
	// function of the grid alone, never of which worker ran the block.
	blocks := (rows + fusedBlockRows - 1) / fusedBlockRows
	e.For(blocks, 1, func(bLo, bHi int) {
		tmp := mat.GetWorkspace(1, n, false)
		for bi := bLo; bi < bHi; bi++ {
			q := bi * fusedBlockRows
			qhi := q + fusedBlockRows
			if qhi > rows {
				qhi = rows
			}
			if perm != nil {
				for i := q; i < qhi; i++ {
					row := panel.Data[i*panel.Stride : i*panel.Stride+n]
					copy(tmp.Data, row)
					for j, v := range perm {
						row[j] = tmp.Data[v]
					}
				}
			}
			fusedTrsmRange(panel, r, q, qhi)
		}
		mat.PutWorkspace(tmp)
	})

	// Stage 2 — Gram accumulation over the solved panel.
	fusedSyrkColsParallel(e, panel, acc)
}

// ReduceGramSlots reduces per-slot Gram accumulators into W in ascending
// slot order and symmetrizes — the tail of GramFixed, split out so an
// out-of-core sweep can run the accumulation panel by panel and close
// the reduction once per sweep.
func ReduceGramSlots(w *mat.Dense, accs []*mat.Dense) {
	w.Zero()
	for _, acc := range accs {
		addUpper(w, acc)
	}
	SymmetrizeFromUpper(w)
}

// fusedSyrkColsParallel partitions acc's output rows at even row-pair
// boundaries and runs fusedSyrkCols on each partition: every acc element
// still receives its updates in ascending summation-quad order, so the
// result is bit-identical for every partition — and therefore for every
// engine width.
func fusedSyrkColsParallel(e *parallel.Engine, b, acc *mat.Dense) {
	n := b.Cols
	pairs := (n + 1) / 2
	if e.Workers() == 1 || mulFlops(b.Rows, n, n) < gemmParallelFlops {
		fusedSyrkCols(b, 0, b.Rows, 0, n, acc)
		return
	}
	e.For(pairs, 1, func(pLo, pHi int) {
		iHi := 2 * pHi
		if iHi > n {
			iHi = n
		}
		fusedSyrkCols(b, 0, b.Rows, 2*pLo, iHi, acc)
	})
}

// fusedSyrkCols is fusedSyrkRange restricted to accumulator output rows
// [iLo, iHi): acc(i,j) += Σ_k B(k,i)·B(k,j) for iLo ≤ i < iHi, j ≥ i,
// summed over rows [lo, hi) of B in the exact quad order of
// fusedSyrkRange. iLo must be even (a row-pair boundary); iHi is even or
// n. Restricting the output rows instead of the summation range is what
// lets callers parallelize without changing any element's accumulation
// order.
//
//repolint:hotpath
func fusedSyrkCols(b *mat.Dense, lo, hi, iLo, iHi int, acc *mat.Dense) {
	n := b.Cols
	k := lo
	for ; k+4 <= hi; k += 4 {
		r0 := b.Data[k*b.Stride : k*b.Stride+n]
		r1 := b.Data[(k+1)*b.Stride : (k+1)*b.Stride+n]
		r2 := b.Data[(k+2)*b.Stride : (k+2)*b.Stride+n]
		r3 := b.Data[(k+3)*b.Stride : (k+3)*b.Stride+n]
		i := iLo
		for ; i+2 <= iHi; i += 2 {
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			di1 := acc.Data[(i+1)*acc.Stride : (i+1)*acc.Stride+n]
			v00, v10, v20, v30 := r0[i], r1[i], r2[i], r3[i]
			v01, v11, v21, v31 := r0[i+1], r1[i+1], r2[i+1], r3[i+1]
			di[i] += v00*v00 + v10*v10 + v20*v20 + v30*v30
			di[i+1] += v00*v01 + v10*v11 + v20*v21 + v30*v31
			di1[i+1] += v01*v01 + v11*v11 + v21*v21 + v31*v31
			for j := i + 2; j < n; j++ {
				w0, w1, w2, w3 := r0[j], r1[j], r2[j], r3[j]
				di[j] += v00*w0 + v10*w1 + v20*w2 + v30*w3
				di1[j] += v01*w0 + v11*w1 + v21*w2 + v31*w3
			}
		}
		if i < iHi {
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			v0, v1, v2, v3 := r0[i], r1[i], r2[i], r3[i]
			for j := i; j < n; j++ {
				di[j] += v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
			}
		}
	}
	// Remainder summation rows: rank-1 accumulation.
	for ; k < hi; k++ {
		rk := b.Data[k*b.Stride : k*b.Stride+n]
		for i := iLo; i < iHi; i++ {
			v := rk[i]
			if v == 0 {
				continue
			}
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			for j := i; j < n; j++ {
				di[j] += v * rk[j]
			}
		}
	}
}
