//go:build !cgoblas || !cgo

package blas

import "testing"

// Without the cgoblas tag (or with cgo disabled) the "cgoblas" name must
// still resolve — served by the native implementation — so backend
// selection written for tagged builds keeps working everywhere.
func TestCgoblasFallsBackToNative(t *testing.T) {
	h, err := Lookup("cgoblas")
	if err != nil {
		t.Fatalf("Lookup(cgoblas) in a stub build: %v", err)
	}
	if h.Name() != "cgoblas" {
		t.Fatalf("handle name %q, want cgoblas", h.Name())
	}
	if h.Effective() != "native" {
		t.Fatalf("stub build Effective() = %q, want native", h.Effective())
	}
	if h.GramTol() != nativeImpl.GramTol() {
		t.Fatalf("stub handle GramTol %g, want native's %g", h.GramTol(), nativeImpl.GramTol())
	}
}
