package blas

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

func checkTriangular(r *mat.Dense, n int, who string) {
	if r.Rows != n || r.Cols != n {
		panic(fmt.Sprintf("blas: %s triangular factor %d×%d, want %d×%d", who, r.Rows, r.Cols, n, n))
	}
}

// TrsmRightUpperNoTrans computes B := B·R⁻¹ for upper triangular R. This is
// the Q := A·R⁻¹ kernel of Cholesky QR (m·n² flops, Level 3): each row of B
// is solved independently by forward substitution with contiguous row
// access on R, and rows are distributed across cores. Every row is solved
// with identical arithmetic regardless of partitioning, so the result is
// bit-identical for every engine width — part of the determinism contract
// of the CQRRPT path.
//
// Panics if R has a zero diagonal entry. The engine e bounds the parallel
// width (nil selects the default engine).
func TrsmRightUpperNoTrans(e *parallel.Engine, b, r *mat.Dense) {
	n := b.Cols
	checkTriangular(r, n, "TrsmRightUpperNoTrans")
	for k := 0; k < n; k++ {
		if r.Data[k*r.Stride+k] == 0 {
			panic(fmt.Sprintf("blas: TrsmRightUpperNoTrans singular R at diagonal %d", k))
		}
	}
	bk := backendFor(e)
	sp := trace.BackendRegion(trace.KernelTrsm, bk.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelTrsm, bk.traceID, int64(b.Rows)*int64(n)*int64(n))
	bk.impl.TrsmRightUpper(e, b, r)
}

// TrsmRightUpper is the native in-place B := B·R⁻¹ solve.
func (nativeBackend) TrsmRightUpper(e *parallel.Engine, b, r *mat.Dense) {
	n := b.Cols
	if mulFlops(b.Rows, n, n) < gemmParallelFlops || e.Workers() == 1 {
		trsmRightRange(b, r, 0, b.Rows)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(n, n) + 1)
	e.For(b.Rows, minChunk+1, func(lo, hi int) {
		trsmRightRange(b, r, lo, hi)
	})
}

// trsmRightRange solves rows [lo, hi) of B := B·R⁻¹. Four B rows are
// solved together so each R row streamed from cache feeds four independent
// substitution chains (register blocking + ILP).
//
//repolint:hotpath
func trsmRightRange(b, r *mat.Dense, lo, hi int) {
	n := b.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		x0 := b.Data[i*b.Stride : i*b.Stride+n]
		x1 := b.Data[(i+1)*b.Stride : (i+1)*b.Stride+n]
		x2 := b.Data[(i+2)*b.Stride : (i+2)*b.Stride+n]
		x3 := b.Data[(i+3)*b.Stride : (i+3)*b.Stride+n]
		for k := 0; k < n; k++ {
			rrow := r.Data[k*r.Stride : k*r.Stride+n]
			inv := 1 / rrow[k]
			v0 := x0[k] * inv
			v1 := x1[k] * inv
			v2 := x2[k] * inv
			v3 := x3[k] * inv
			x0[k], x1[k], x2[k], x3[k] = v0, v1, v2, v3
			for j := k + 1; j < n; j++ {
				rv := rrow[j]
				x0[j] -= v0 * rv
				x1[j] -= v1 * rv
				x2[j] -= v2 * rv
				x3[j] -= v3 * rv
			}
		}
	}
	// The tail rows use exactly the blocked path's arithmetic (reciprocal
	// multiply, no zero-skip): a row's bits must not depend on whether it
	// fell in a 4-block or a chunk tail, so the kernel's output is
	// independent of how the rows were partitioned — and therefore of the
	// engine width.
	for ; i < hi; i++ {
		x := b.Data[i*b.Stride : i*b.Stride+n]
		for k := 0; k < n; k++ {
			rrow := r.Data[k*r.Stride : k*r.Stride+n]
			xk := x[k] * (1 / rrow[k])
			x[k] = xk
			for j := k + 1; j < n; j++ {
				x[j] -= xk * rrow[j]
			}
		}
	}
}

// TrsmLeftUpperTrans computes B := R⁻ᵀ·B for upper triangular R, i.e. it
// solves Rᵀ·X = B. Used for R₁₂ := R₁₁⁻ᵀ·W₁₂ (Algorithm 4, line 5). The
// recurrence over rows is sequential; each step is a row axpy.
func TrsmLeftUpperTrans(r, b *mat.Dense) {
	n := b.Rows
	checkTriangular(r, n, "TrsmLeftUpperTrans")
	sp := trace.Region(trace.KernelTrsm)
	defer sp.End()
	trace.AddFlops(trace.KernelTrsm, int64(n)*int64(n)*int64(b.Cols))
	for i := 0; i < n; i++ {
		d := r.Data[i*r.Stride+i]
		if d == 0 {
			panic(fmt.Sprintf("blas: TrsmLeftUpperTrans singular R at diagonal %d", i))
		}
		xi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for k := 0; k < i; k++ {
			c := r.Data[k*r.Stride+i] // Rᵀ[i,k]
			if c == 0 {
				continue
			}
			xk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j := range xi {
				xi[j] -= c * xk[j]
			}
		}
		inv := 1 / d
		for j := range xi {
			xi[j] *= inv
		}
	}
}

// TrsmLeftUpperNoTrans computes B := R⁻¹·B for upper triangular R by back
// substitution over rows.
func TrsmLeftUpperNoTrans(r, b *mat.Dense) {
	n := b.Rows
	checkTriangular(r, n, "TrsmLeftUpperNoTrans")
	sp := trace.Region(trace.KernelTrsm)
	defer sp.End()
	trace.AddFlops(trace.KernelTrsm, int64(n)*int64(n)*int64(b.Cols))
	for i := n - 1; i >= 0; i-- {
		d := r.Data[i*r.Stride+i]
		if d == 0 {
			panic(fmt.Sprintf("blas: TrsmLeftUpperNoTrans singular R at diagonal %d", i))
		}
		xi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		rrow := r.Data[i*r.Stride : i*r.Stride+r.Cols]
		for k := i + 1; k < n; k++ {
			c := rrow[k]
			if c == 0 {
				continue
			}
			xk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j := range xi {
				xi[j] -= c * xk[j]
			}
		}
		inv := 1 / d
		for j := range xi {
			xi[j] *= inv
		}
	}
}

// TrmmLeftUpperNoTrans computes B := A·B in place for upper triangular A.
// Used to accumulate R := R'·R (Algorithm 4, line 12). Rows are updated in
// increasing order, which is safe in place because row i of the product
// depends only on rows k ≥ i of the old B.
func TrmmLeftUpperNoTrans(a, b *mat.Dense) {
	n := b.Rows
	checkTriangular(a, n, "TrmmLeftUpperNoTrans")
	sp := trace.Region(trace.KernelTrmm)
	defer sp.End()
	trace.AddFlops(trace.KernelTrmm, int64(n)*int64(n)*int64(b.Cols))
	for i := 0; i < n; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		aii := arow[i]
		for j := range bi {
			bi[j] *= aii
		}
		for k := i + 1; k < n; k++ {
			c := arow[k]
			if c == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j := range bi {
				bi[j] += c * bk[j]
			}
		}
	}
}
