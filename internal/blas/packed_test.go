package blas

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/mat"
)

// Tests for the packed/tiled Level-3 paths: shapes are chosen to straddle
// the tile boundaries (kBlock, nBlock, ttIBlock, syrkJBlock) so full tiles,
// ragged edge tiles, and the single-tile fast path are all exercised, with
// strided views to verify packing is stride-correct.

func matsClose(t *testing.T, got, want *mat.Dense, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: %d×%d vs %d×%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			g, w := got.At(i, j), want.At(i, j)
			if math.Abs(g-w) > tol*(1+math.Abs(w)) {
				t.Fatalf("%s: (%d,%d) got %g want %g", label, i, j, g, w)
			}
		}
	}
}

func TestGemmNNPackedWideN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// n > nBlock triggers the packed j×k-tiled path; k straddles kBlock.
	for _, sh := range []struct{ m, k, n int }{
		{37, kBlock + 13, nBlock + 21},
		{5, 3, nBlock + 1},
		{11, kBlock, 2*nBlock + 7},
	} {
		a := randDenseStrided(rng, sh.m, sh.k)
		b := randDenseStrided(rng, sh.k, sh.n)
		c := randDense(rng, sh.m, sh.n)
		want := c.Clone()
		Gemm(nil, NoTrans, NoTrans, 1.5, a, b, 0.5, c)
		naiveGemm(NoTrans, NoTrans, 1.5, a, b, 0.5, want)
		matsClose(t, c, want, 1e-12*float64(sh.k), "gemmNN packed")
	}
}

func TestGemmTTPackedTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range []struct{ m, k, n int }{
		{ttIBlock + 5, kBlock + 9, 17}, // ragged i and l tiles
		{3, 2, 4},                      // tiny: single partial tile
		{2 * ttIBlock, kBlock, 33},     // exact tile multiples
	} {
		a := randDenseStrided(rng, sh.k, sh.m) // op(A) = Aᵀ is m×k
		b := randDenseStrided(rng, sh.n, sh.k) // op(B) = Bᵀ is k×n
		c := randDense(rng, sh.m, sh.n)
		want := c.Clone()
		Gemm(nil, Trans, Trans, -0.75, a, b, 1, c)
		naiveGemm(Trans, Trans, -0.75, a, b, 1, want)
		matsClose(t, c, want, 1e-12*float64(sh.k), "gemmTT packed")
	}
}

func TestGemmTTParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 150, 130, 120 // 2·m·n·k > gemmParallelFlops
	a := randDense(rng, k, m)
	b := randDense(rng, n, k)
	c1 := randDense(rng, m, n)
	c2 := c1.Clone()
	Gemm(parallel.NewEngine(4), Trans, Trans, 1, a, b, 1, c1)
	Gemm(parallel.NewEngine(1), Trans, Trans, 1, a, b, 1, c2)
	matsClose(t, c1, c2, 1e-13*float64(k), "gemmTT parallel vs sequential")
}

func TestSyrkWideNBlockedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{syrkJBlock + 1, syrkJBlock + 37} {
		m := 19 // small m keeps the naive reference cheap
		a := randDenseStrided(rng, m, n)
		c := randDense(rng, n, n)
		want := c.Clone()
		SyrkUpperTrans(nil, 2, a, 0.25, c)
		naiveSyrkUpper(2, a, 0.25, want)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				g, w := c.At(i, j), want.At(i, j)
				if math.Abs(g-w) > 1e-12*(1+math.Abs(w)) {
					t.Fatalf("n=%d: (%d,%d) got %g want %g", n, i, j, g, w)
				}
			}
		}
		// Strict lower triangle untouched.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if c.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d: lower (%d,%d) modified", n, i, j)
				}
			}
		}
	}
}

func TestSyrkWideNParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n := 400, syrkJBlock+13
	a := randDense(rng, m, n)
	c1 := mat.NewDense(n, n)
	c2 := mat.NewDense(n, n)
	SyrkUpperTrans(parallel.NewEngine(4), 1, a, 0, c1)
	SyrkUpperTrans(parallel.NewEngine(1), 1, a, 0, c2)
	matsClose(t, c1, c2, 1e-13*float64(m), "syrk parallel vs sequential")
}

// TestMulFlopsSaturates: the threshold helper must clamp instead of
// wrapping for products that overflow int.
func TestMulFlopsSaturates(t *testing.T) {
	huge := int(math.MaxInt64 / 2)
	if got := mulFlops(2, huge, 3); got != math.MaxInt64 {
		t.Fatalf("mulFlops overflow: got %d", got)
	}
	if got := mulFlops(2, 10, 20, 30); got != 12000 {
		t.Fatalf("mulFlops exact: got %d, want 12000", got)
	}
	if got := mulFlops(7, 0, 1<<62); got != 0 {
		t.Fatalf("mulFlops zero: got %d", got)
	}
	if got := satMul(1<<32, 1<<32); got != math.MaxInt64 {
		t.Fatalf("satMul overflow: got %d", got)
	}
}

// TestGramLargeStillAllocFree guards the allocation-free invariant of the
// sequential Gram/TRSM hot path that Ite-CholQR-CP iterates over.
func TestGramLargeStillAllocFree(t *testing.T) {
	seq := parallel.NewEngine(1)
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 2000, 64)
	w := mat.NewDense(64, 64)
	r := mat.NewDense(64, 64)
	for i := 0; i < 64; i++ {
		r.Set(i, i, 1+float64(i))
		for j := i + 1; j < 64; j++ {
			r.Set(i, j, 0.01)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		Gram(seq, w, a)
		TrsmRightUpperNoTrans(seq, a, r)
	})
	if allocs > 0 {
		t.Fatalf("sequential Gram+TRSM allocated %.1f times per run, want 0", allocs)
	}
}
