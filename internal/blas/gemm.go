package blas

import (
	"sync"

	"repro/internal/parallel"
	"repro/mat"
)

const (
	// kBlock is the tile width along the summation dimension; one tile of
	// B rows (kBlock × n doubles) should stay resident in L2 while a row
	// panel of C is updated.
	kBlock = 256
	// gemmParallelFlops is the minimum multiply-add count before Gemm
	// fans out across cores.
	gemmParallelFlops = 1 << 16
	// maxPrivateAcc bounds the size (in float64s) of per-worker private
	// output accumulators used by the reduction-based Aᵀ·B path.
	maxPrivateAcc = 1 << 22
)

// Gemm computes C = alpha·op(A)·op(B) + beta·C, where op is the identity
// or transpose as selected by tA and tB. C must not alias A or B.
func Gemm(tA, tB Transpose, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, n, k := checkGemm(tA, tB, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		scaleMatrix(beta, c)
	}
	if alpha == 0 || k == 0 {
		return
	}
	switch {
	case tA == NoTrans && tB == NoTrans:
		gemmNN(alpha, a, b, c)
	case tA == Trans && tB == NoTrans:
		gemmTN(alpha, a, b, c)
	case tA == NoTrans && tB == Trans:
		gemmNT(alpha, a, b, c)
	default:
		gemmTT(alpha, a, b, c)
	}
}

func scaleMatrix(beta float64, c *mat.Dense) {
	for i := 0; i < c.Rows; i++ {
		row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		for j := range row {
			row[j] *= beta
		}
	}
}

// gemmNN: C += alpha·A·B. Parallel over row panels of C; within a panel,
// the summation dimension is tiled so the active B tile stays in cache,
// and processed four at a time so each load/store of the C row amortizes
// four multiply-adds (register blocking).
func gemmNN(alpha float64, a, b, c *mat.Dense) {
	m, n, k := c.Rows, c.Cols, a.Cols
	body := func(lo, hi int) {
		for l0 := 0; l0 < k; l0 += kBlock {
			l1 := l0 + kBlock
			if l1 > k {
				l1 = k
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
				crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
				l := l0
				for ; l+4 <= l1; l += 4 {
					a0 := alpha * arow[l]
					a1 := alpha * arow[l+1]
					a2 := alpha * arow[l+2]
					a3 := alpha * arow[l+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b.Data[l*b.Stride : l*b.Stride+n]
					b1 := b.Data[(l+1)*b.Stride : (l+1)*b.Stride+n]
					b2 := b.Data[(l+2)*b.Stride : (l+2)*b.Stride+n]
					b3 := b.Data[(l+3)*b.Stride : (l+3)*b.Stride+n]
					for j := range crow {
						crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; l < l1; l++ {
					av := alpha * arow[l]
					if av == 0 {
						continue
					}
					brow := b.Data[l*b.Stride : l*b.Stride+n]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
	if 2*m*n*k < gemmParallelFlops {
		body(0, m)
		return
	}
	minChunk := gemmParallelFlops / (2*n*k + 1)
	parallel.For(m, minChunk+1, body)
}

// gemmTN: C += alpha·Aᵀ·B, the Gram-type product that dominates Cholesky QR.
// The summation runs over the (long) row dimension of A and B, so the
// parallel scheme splits rows across workers, each accumulating into a
// private m×n buffer, followed by a sequential reduction. For the
// tall-skinny shapes in this library the buffer is a small n×n block.
func gemmTN(alpha float64, a, b, c *mat.Dense) {
	m, n := c.Rows, c.Cols // m = a.Cols
	k := a.Rows
	// Four summation rows are consumed together: each C-row update then
	// amortizes its load/store over four multiply-adds.
	seq := func(lo, hi int, dst *mat.Dense) {
		l := lo
		for ; l+4 <= hi; l += 4 {
			a0 := a.Data[l*a.Stride : l*a.Stride+a.Cols]
			a1 := a.Data[(l+1)*a.Stride : (l+1)*a.Stride+a.Cols]
			a2 := a.Data[(l+2)*a.Stride : (l+2)*a.Stride+a.Cols]
			a3 := a.Data[(l+3)*a.Stride : (l+3)*a.Stride+a.Cols]
			b0 := b.Data[l*b.Stride : l*b.Stride+n]
			b1 := b.Data[(l+1)*b.Stride : (l+1)*b.Stride+n]
			b2 := b.Data[(l+2)*b.Stride : (l+2)*b.Stride+n]
			b3 := b.Data[(l+3)*b.Stride : (l+3)*b.Stride+n]
			for i := 0; i < m; i++ {
				v0 := alpha * a0[i]
				v1 := alpha * a1[i]
				v2 := alpha * a2[i]
				v3 := alpha * a3[i]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				drow := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
				for j := range drow {
					drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
				}
			}
		}
		for ; l < hi; l++ {
			arow := a.Data[l*a.Stride : l*a.Stride+a.Cols]
			brow := b.Data[l*b.Stride : l*b.Stride+n]
			for i, av := range arow {
				av *= alpha
				if av == 0 {
					continue
				}
				drow := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
	w := parallel.MaxWorkers()
	if 2*m*n*k < gemmParallelFlops || w == 1 || m*n > maxPrivateAcc {
		seq(0, k, c)
		return
	}
	minChunk := gemmParallelFlops / (2*m*n + 1)
	ranges := parallel.Split(k, w, minChunk+1)
	if len(ranges) <= 1 {
		seq(0, k, c)
		return
	}
	acc := make([]*mat.Dense, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for bi, r := range ranges {
		go func(bi int, r parallel.Range) {
			defer wg.Done()
			buf := mat.NewDense(m, n)
			seq(r.Lo, r.Hi, buf)
			acc[bi] = buf
		}(bi, r)
	}
	wg.Wait()
	for _, buf := range acc {
		for i := 0; i < m; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			brow := buf.Data[i*buf.Stride : i*buf.Stride+buf.Cols]
			for j, v := range brow {
				crow[j] += v
			}
		}
	}
}

// gemmNT: C += alpha·A·Bᵀ. Each output element is a dot product of two
// contiguous rows; parallel over rows of C.
func gemmNT(alpha float64, a, b, c *mat.Dense) {
	m, n, k := c.Rows, c.Cols, a.Cols
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			for j := 0; j < n; j++ {
				brow := b.Data[j*b.Stride : j*b.Stride+b.Cols]
				// Four independent accumulators hide FMA latency.
				var s0, s1, s2, s3 float64
				l := 0
				for ; l+4 <= k; l += 4 {
					s0 += arow[l] * brow[l]
					s1 += arow[l+1] * brow[l+1]
					s2 += arow[l+2] * brow[l+2]
					s3 += arow[l+3] * brow[l+3]
				}
				for ; l < k; l++ {
					s0 += arow[l] * brow[l]
				}
				crow[j] += alpha * (s0 + s1 + s2 + s3)
			}
		}
	}
	if 2*m*n*k < gemmParallelFlops {
		body(0, m)
		return
	}
	minChunk := gemmParallelFlops / (2*n*k + 1)
	parallel.For(m, minChunk+1, body)
}

// gemmTT: C += alpha·Aᵀ·Bᵀ. Rarely used; strided access on A is accepted.
func gemmTT(alpha float64, a, b, c *mat.Dense) {
	m, n := c.Rows, c.Cols
	k := a.Rows
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			for j := 0; j < n; j++ {
				brow := b.Data[j*b.Stride : j*b.Stride+b.Cols]
				var s float64
				for l := 0; l < k; l++ {
					s += a.Data[l*a.Stride+i] * brow[l]
				}
				crow[j] += alpha * s
			}
		}
	}
	if 2*m*n*k < gemmParallelFlops {
		body(0, m)
		return
	}
	parallel.For(m, 1, body)
}
