package blas

import (
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

const (
	// kBlock is the tile width along the summation dimension; one tile of
	// B rows (kBlock × nBlock doubles) should stay resident in L2 while a
	// row panel of C is updated.
	kBlock = 256
	// nBlock is the tile width along the output columns. For n ≤ nBlock
	// the whole C row fits the cache and gemmNN tiles in k only; wider
	// products switch to the packed path that tiles in both j and k.
	nBlock = 256
	// ttIBlock is the output-row tile of the packed Aᵀ kernel in gemmTT:
	// one packed tile (ttIBlock × kBlock doubles) stays cache resident
	// while all rows of B stream against it.
	ttIBlock = 48
	// gemmParallelFlops is the minimum multiply-add count before Gemm
	// fans out across cores.
	gemmParallelFlops = 1 << 16
	// maxPrivateAcc bounds the size (in float64s) of per-worker private
	// output accumulators used by the reduction-based Aᵀ·B path.
	maxPrivateAcc = 1 << 22
)

// Gemm computes C = alpha·op(A)·op(B) + beta·C, where op is the identity
// or transpose as selected by tA and tB. C must not alias A or B.
// Validation, beta scaling, and trace attribution run here; the
// accumulation dispatches to the compute backend carried by the engine
// (nil or unlabeled engines use the native packed kernels).
func Gemm(e *parallel.Engine, tA, tB Transpose, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, n, k := checkGemm(tA, tB, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		scaleMatrix(beta, c)
	}
	if alpha == 0 || k == 0 {
		return
	}
	bk := backendFor(e)
	sp := trace.BackendRegion(trace.KernelGemm, bk.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelGemm, bk.traceID, 2*int64(m)*int64(n)*int64(k))
	bk.impl.GemmAcc(e, tA, tB, alpha, a, b, c)
}

// GemmAcc is the native C += alpha·op(A)·op(B) accumulation.
func (nativeBackend) GemmAcc(e *parallel.Engine, tA, tB Transpose, alpha float64, a, b, c *mat.Dense) {
	switch {
	case tA == NoTrans && tB == NoTrans:
		gemmNN(e, alpha, a, b, c)
	case tA == Trans && tB == NoTrans:
		gemmTN(e, alpha, a, b, c)
	case tA == NoTrans && tB == Trans:
		gemmNT(e, alpha, a, b, c)
	default:
		gemmTT(e, alpha, a, b, c)
	}
}

func scaleMatrix(beta float64, c *mat.Dense) {
	for i := 0; i < c.Rows; i++ {
		row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		for j := range row {
			row[j] *= beta
		}
	}
}

// gemmNN: C += alpha·A·B. Parallel over row panels of C. For n ≤ nBlock
// the summation dimension alone is tiled (the C row stays in L1) and four
// B rows are consumed per pass so each load/store of the C row amortizes
// four multiply-adds. Wider products tile in both j and k: each worker
// packs the active B tile into a contiguous pooled buffer so the inner
// kernel streams it independent of B's stride, and only an nBlock-wide
// segment of the C row is live per tile.
func gemmNN(e *parallel.Engine, alpha float64, a, b, c *mat.Dense) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if mulFlops(2, m, n, k) < gemmParallelFlops || e.Workers() == 1 {
		gemmNNRange(alpha, a, b, c, 0, m)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(2, n, k) + 1)
	e.For(m, minChunk+1, func(lo, hi int) {
		gemmNNRange(alpha, a, b, c, lo, hi)
	})
}

// gemmNNRange updates rows [lo, hi) of C += alpha·A·B, choosing between
// the narrow-n k-tiled kernel and the packed j×k-tiled kernel.
func gemmNNRange(alpha float64, a, b, c *mat.Dense, lo, hi int) {
	if c.Cols <= nBlock {
		gemmNNNarrow(alpha, a, b, c, lo, hi)
		return
	}
	gemmNNPacked(alpha, a, b, c, lo, hi)
}

func gemmNNNarrow(alpha float64, a, b, c *mat.Dense, lo, hi int) {
	n, k := c.Cols, a.Cols
	for l0 := 0; l0 < k; l0 += kBlock {
		l1 := min(l0+kBlock, k)
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			l := l0
			for ; l+4 <= l1; l += 4 {
				a0 := alpha * arow[l]
				a1 := alpha * arow[l+1]
				a2 := alpha * arow[l+2]
				a3 := alpha * arow[l+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.Data[l*b.Stride : l*b.Stride+n]
				b1 := b.Data[(l+1)*b.Stride : (l+1)*b.Stride+n]
				b2 := b.Data[(l+2)*b.Stride : (l+2)*b.Stride+n]
				b3 := b.Data[(l+3)*b.Stride : (l+3)*b.Stride+n]
				for j := range crow {
					crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; l < l1; l++ {
				av := alpha * arow[l]
				if av == 0 {
					continue
				}
				brow := b.Data[l*b.Stride : l*b.Stride+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

//repolint:hotpath
func gemmNNPacked(alpha float64, a, b, c *mat.Dense, lo, hi int) {
	n, k := c.Cols, a.Cols
	packed := mat.GetFloats(kBlock*nBlock, false)
	defer mat.PutFloats(packed)
	for j0 := 0; j0 < n; j0 += nBlock {
		jb := min(nBlock, n-j0)
		for l0 := 0; l0 < k; l0 += kBlock {
			lb := min(kBlock, k-l0)
			for l := 0; l < lb; l++ {
				src := b.Data[(l0+l)*b.Stride+j0 : (l0+l)*b.Stride+j0+jb]
				copy(packed[l*jb:l*jb+jb], src)
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*a.Stride+l0 : i*a.Stride+l0+lb]
				crow := c.Data[i*c.Stride+j0 : i*c.Stride+j0+jb]
				l := 0
				for ; l+4 <= lb; l += 4 {
					a0 := alpha * arow[l]
					a1 := alpha * arow[l+1]
					a2 := alpha * arow[l+2]
					a3 := alpha * arow[l+3]
					b0 := packed[l*jb : l*jb+jb]
					b1 := packed[(l+1)*jb : (l+1)*jb+jb]
					b2 := packed[(l+2)*jb : (l+2)*jb+jb]
					b3 := packed[(l+3)*jb : (l+3)*jb+jb]
					for j := range crow {
						crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; l < lb; l++ {
					av := alpha * arow[l]
					brow := packed[l*jb : l*jb+jb]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// gemmTN: C += alpha·Aᵀ·B, the Gram-type product that dominates Cholesky QR.
// The summation runs over the (long) row dimension of A and B, so the
// parallel scheme splits rows across pool workers, each accumulating into
// a pooled private m×n buffer, followed by a sequential reduction. For the
// tall-skinny shapes in this library the buffer is a small n×n block, and
// pooling makes the steady-state iteration loop allocation-free.
func gemmTN(e *parallel.Engine, alpha float64, a, b, c *mat.Dense) {
	m, n := c.Rows, c.Cols // m = a.Cols
	k := a.Rows
	w := e.Workers()
	if mulFlops(2, m, n, k) < gemmParallelFlops || w == 1 || mulFlops(m, n) > maxPrivateAcc {
		gemmTNRange(alpha, a, b, 0, k, c)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(2, m, n) + 1)
	ranges := parallel.Split(k, w, minChunk+1)
	if len(ranges) <= 1 {
		gemmTNRange(alpha, a, b, 0, k, c)
		return
	}
	bufs := make([]*mat.Dense, len(ranges))
	tasks := make([]func(), len(ranges))
	for bi, r := range ranges {
		tasks[bi] = func() {
			buf := mat.GetWorkspace(m, n, true)
			gemmTNRange(alpha, a, b, r.Lo, r.Hi, buf)
			bufs[bi] = buf
		}
	}
	e.Do(tasks...)
	for _, buf := range bufs {
		for i := 0; i < m; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			brow := buf.Data[i*buf.Stride : i*buf.Stride+buf.Cols]
			for j, v := range brow {
				crow[j] += v
			}
		}
		mat.PutWorkspace(buf)
	}
}

// gemmTNRange accumulates dst += alpha·A(lo:hi,:)ᵀ·B(lo:hi,:). Four
// summation rows are consumed together: each dst-row update then amortizes
// its load/store over four multiply-adds.
//
//repolint:hotpath
func gemmTNRange(alpha float64, a, b *mat.Dense, lo, hi int, dst *mat.Dense) {
	n := dst.Cols
	l := lo
	for ; l+4 <= hi; l += 4 {
		a0 := a.Data[l*a.Stride : l*a.Stride+a.Cols]
		a1 := a.Data[(l+1)*a.Stride : (l+1)*a.Stride+a.Cols]
		a2 := a.Data[(l+2)*a.Stride : (l+2)*a.Stride+a.Cols]
		a3 := a.Data[(l+3)*a.Stride : (l+3)*a.Stride+a.Cols]
		b0 := b.Data[l*b.Stride : l*b.Stride+n]
		b1 := b.Data[(l+1)*b.Stride : (l+1)*b.Stride+n]
		b2 := b.Data[(l+2)*b.Stride : (l+2)*b.Stride+n]
		b3 := b.Data[(l+3)*b.Stride : (l+3)*b.Stride+n]
		for i := 0; i < dst.Rows; i++ {
			v0 := alpha * a0[i]
			v1 := alpha * a1[i]
			v2 := alpha * a2[i]
			v3 := alpha * a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			drow := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
			for j := range drow {
				drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
	}
	for ; l < hi; l++ {
		arow := a.Data[l*a.Stride : l*a.Stride+a.Cols]
		brow := b.Data[l*b.Stride : l*b.Stride+n]
		for i, av := range arow {
			av *= alpha
			if av == 0 {
				continue
			}
			drow := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// gemmNT: C += alpha·A·Bᵀ. Each output element is a dot product of two
// contiguous rows; parallel over rows of C.
func gemmNT(e *parallel.Engine, alpha float64, a, b, c *mat.Dense) {
	m, n, k := c.Rows, c.Cols, a.Cols
	if mulFlops(2, m, n, k) < gemmParallelFlops || e.Workers() == 1 {
		gemmNTRange(alpha, a, b, c, 0, m)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(2, n, k) + 1)
	e.For(m, minChunk+1, func(lo, hi int) {
		gemmNTRange(alpha, a, b, c, lo, hi)
	})
}

func gemmNTRange(alpha float64, a, b, c *mat.Dense, lo, hi int) {
	n, k := c.Cols, a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := 0; j < n; j++ {
			brow := b.Data[j*b.Stride : j*b.Stride+b.Cols]
			// Four independent accumulators hide FMA latency.
			var s0, s1, s2, s3 float64
			l := 0
			for ; l+4 <= k; l += 4 {
				s0 += arow[l] * brow[l]
				s1 += arow[l+1] * brow[l+1]
				s2 += arow[l+2] * brow[l+2]
				s3 += arow[l+3] * brow[l+3]
			}
			for ; l < k; l++ {
				s0 += arow[l] * brow[l]
			}
			crow[j] += alpha * (s0 + s1 + s2 + s3)
		}
	}
}

// gemmTT: C += alpha·Aᵀ·Bᵀ. The columns of A that feed a tile of C rows
// are packed (transposed) into a contiguous pooled buffer, turning every
// output element into a contiguous dot product against a row of B with
// four independent accumulators — the strided inner loop this kernel used
// to run never vectorizes and thrashes the TLB for large k. The same
// packed kernel serves the sequential fallback, so small products get the
// register blocking too.
func gemmTT(e *parallel.Engine, alpha float64, a, b, c *mat.Dense) {
	m, n := c.Rows, c.Cols
	k := a.Rows
	if mulFlops(2, m, n, k) < gemmParallelFlops || e.Workers() == 1 {
		gemmTTRange(alpha, a, b, c, 0, m)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(2, n, k) + 1)
	e.For(m, minChunk+1, func(lo, hi int) {
		gemmTTRange(alpha, a, b, c, lo, hi)
	})
}

func gemmTTRange(alpha float64, a, b, c *mat.Dense, lo, hi int) {
	n, k := c.Cols, a.Rows
	packed := mat.GetFloats(ttIBlock*kBlock, false)
	defer mat.PutFloats(packed)
	for i0 := lo; i0 < hi; i0 += ttIBlock {
		ib := min(ttIBlock, hi-i0)
		for l0 := 0; l0 < k; l0 += kBlock {
			lb := min(kBlock, k-l0)
			// packed[(i−i0)·lb + (l−l0)] = A[l][i]: contiguous reads
			// along the rows of A, tile-local strided writes.
			for l := 0; l < lb; l++ {
				arow := a.Data[(l0+l)*a.Stride+i0 : (l0+l)*a.Stride+i0+ib]
				for i, av := range arow {
					packed[i*lb+l] = av
				}
			}
			for i := 0; i < ib; i++ {
				apk := packed[i*lb : i*lb+lb]
				crow := c.Data[(i0+i)*c.Stride : (i0+i)*c.Stride+n]
				for j := 0; j < n; j++ {
					brow := b.Data[j*b.Stride+l0 : j*b.Stride+l0+lb]
					var s0, s1, s2, s3 float64
					l := 0
					for ; l+4 <= lb; l += 4 {
						s0 += apk[l] * brow[l]
						s1 += apk[l+1] * brow[l+1]
						s2 += apk[l+2] * brow[l+2]
						s3 += apk[l+3] * brow[l+3]
					}
					for ; l < lb; l++ {
						s0 += apk[l] * brow[l]
					}
					crow[j] += alpha * (s0 + s1 + s2 + s3)
				}
			}
		}
	}
}
