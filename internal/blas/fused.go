package blas

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// The fused permute→TRSM→Gram streaming pass. For tall-skinny m×n with
// m ≫ n every stage of the Ite-CholQR-CP inner loop is memory-bandwidth
// bound: the unfused sequence streams the full m×n working matrix from
// DRAM five times per pivoting iteration (permute read+write, TRSM
// read+write, next Gram read). Fusing the three into a single row-block
// pass performs the column gather in L1, solves the block against R while
// it is cache resident, and immediately accumulates its Gram
// contribution, collapsing the five traversals to two (one read, one
// write). See DESIGN.md §10 for the traffic model.
const (
	// fusedBlockRows is the micro-block height: one block of B rows is
	// gathered, solved, and Gram-accumulated while it stays cache
	// resident. Must be a multiple of the 4-row register quad so the
	// quad grouping inside a slot is independent of the block loop.
	fusedBlockRows = 64
	// fusedMaxSlots is the fixed fan-out of the deterministic Gram
	// reduction: the row range is partitioned into at most this many
	// slots as a function of m only — never of the engine width — and
	// the per-slot partial Grams are reduced in ascending slot order.
	// Any engine width therefore produces bit-identical Gram results,
	// the lockstep contract the replicated distributed steps rely on.
	fusedMaxSlots = 16
	// fusedMinSlotRows keeps slots tall enough that the per-slot n×n
	// accumulator traffic stays negligible against the row streaming.
	fusedMinSlotRows = 2048
)

// fusedSlots returns the reduction fan-out for an m-row pass: a function
// of m alone, so the reduction shape (and hence the floating-point
// summation order) is identical for every engine width.
func fusedSlots(m int) int {
	s := m / fusedMinSlotRows
	if s < 1 {
		return 1
	}
	if s > fusedMaxSlots {
		return fusedMaxSlots
	}
	return s
}

// PermTrsmGramFused applies, in one streaming pass over the rows of B:
//
//	B := (B·P)·R⁻¹,   G := BᵀB   (the Gram of the updated B),
//
// where P is the column permutation perm ((B·P)(:,j) = B(:,perm[j]);
// nil means identity) and R is n×n upper triangular. This fuses lines
// 8–11 of Ite-CholQR-CP (Algorithm 4) with line 3 of the next iteration:
// each row block is gathered, solved, and accumulated into a per-slot
// Gram partial while it is cache resident, so B travels through DRAM
// once per direction instead of five times for the unfused
// permute + TRSM + SYRK sequence.
//
// The per-row permute is elementwise identical to
// mat.PermuteColsInPlace; the solve and Gram use panel-blocked kernels
// tuned for the cache-resident micro-block, so B and G agree with the
// unfused TrsmRightUpperNoTrans + Gram results to rounding (a few ULP),
// not bitwise. What IS bitwise fixed is the engine-width independence:
// G is accumulated through a fixed-shape reduction (fusedSlots(m) slots
// reduced in ascending order) and every kernel's summation order is a
// function of the slot bounds alone, so engines of any width produce
// bit-identical B and G, keeping distributed ranks in lockstep. G is
// fully symmetric on return, like Gram.
//
// Panics if R has a zero diagonal entry, if perm is non-nil with a
// length other than B's column count, or if G is not n×n. The engine e
// bounds the parallel width (nil selects the default engine).
func PermTrsmGramFused(e *parallel.Engine, b *mat.Dense, perm mat.Perm, r, g *mat.Dense) {
	m, n := b.Rows, b.Cols
	checkTriangular(r, n, "PermTrsmGramFused")
	if g.Rows != n || g.Cols != n {
		panic(fmt.Sprintf("blas: PermTrsmGramFused G %d×%d, want %d×%d", g.Rows, g.Cols, n, n))
	}
	if perm != nil && len(perm) != n {
		panic(fmt.Sprintf("blas: PermTrsmGramFused perm length %d != cols %d", len(perm), n))
	}
	for k := 0; k < n; k++ {
		if r.Data[k*r.Stride+k] == 0 {
			panic(fmt.Sprintf("blas: PermTrsmGramFused singular R at diagonal %d", k))
		}
	}
	g.Zero()
	if m == 0 || n == 0 {
		return
	}
	bk := backendFor(e)
	sp := trace.BackendRegion(trace.KernelFusedTrsmGram, bk.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelFusedTrsmGram, bk.traceID,
		int64(m)*int64(n)*int64(n)+int64(m)*int64(n)*int64(n+1))
	trace.AddBytesBackend(trace.KernelFusedTrsmGram, bk.traceID, 2*8*int64(m)*int64(n))
	bk.impl.PermTrsmGram(e, b, perm, r, g)
	SymmetrizeFromUpper(g)
}

// PermTrsmGram is the native fused streaming pass: fixed-slot reduction,
// micro-blocked gather + panel TRSM + register-tiled SYRK.
func (nativeBackend) PermTrsmGram(e *parallel.Engine, b *mat.Dense, perm mat.Perm, r, g *mat.Dense) {
	m, n := b.Rows, b.Cols
	slots := fusedSlots(m)
	w := e.Workers()
	if w == 1 || slots == 1 || mulFlops(2, m, n, n) < gemmParallelFlops {
		// Sequential path: one reusable accumulator, still reduced slot
		// by slot in ascending order — the exact summation shape of the
		// parallel path, so width 1 matches width k bit for bit. Slot
		// bounds are computed arithmetically, and the gather scratch is a
		// pooled 1×n Dense (PutFloats heap-escapes its header), keeping
		// this path allocation free.
		acc := mat.GetWorkspace(n, n, false)
		tmp := mat.GetWorkspace(1, n, false)
		for si := 0; si < slots; si++ {
			lo, hi := fusedSlotBounds(m, slots, si)
			acc.Zero()
			fusedSlotRange(b, r, perm, lo, hi, acc, tmp.Data)
			addUpper(g, acc)
		}
		mat.PutWorkspace(tmp)
		mat.PutWorkspace(acc)
		return
	}

	// Parallel path: workers claim contiguous slot subranges; every slot
	// gets its own pooled accumulator, and the reduction into G walks the
	// slots in ascending index order regardless of which worker filled
	// them.
	accs := make([]*mat.Dense, slots)
	taskRanges := parallel.Split(slots, w, 1)
	tasks := make([]func(), len(taskRanges))
	for ti, tr := range taskRanges {
		tasks[ti] = func() {
			tmp := mat.GetWorkspace(1, n, false)
			for si := tr.Lo; si < tr.Hi; si++ {
				acc := mat.GetWorkspace(n, n, true)
				lo, hi := fusedSlotBounds(m, slots, si)
				fusedSlotRange(b, r, perm, lo, hi, acc, tmp.Data)
				accs[si] = acc
			}
			mat.PutWorkspace(tmp)
		}
	}
	e.Do(tasks...)
	for _, acc := range accs {
		addUpper(g, acc)
		mat.PutWorkspace(acc)
	}
}

// fusedSlotBounds returns the half-open row range of slot si out of slots,
// matching parallel.Split(m, slots, 1) exactly (which both paths relied on
// historically) without allocating the range slice.
func fusedSlotBounds(m, slots, si int) (lo, hi int) {
	chunk, rem := m/slots, m%slots
	lo = si*chunk + min(si, rem)
	hi = lo + chunk
	if si < rem {
		hi++
	}
	return lo, hi
}

// fusedSlotRange streams rows [lo, hi) of B through the three fused
// stages one micro-block at a time: gather the column permutation into
// the block (tmp is an n-length scratch row), solve the block against R
// with the panel-blocked fused TRSM, and accumulate the block's Gram
// contribution into acc (upper triangle) with the register-tiled fused
// SYRK. The micro-block grouping is anchored at lo, so the summation
// order inside a slot is fixed by the slot boundaries alone.
//
//repolint:hotpath
func fusedSlotRange(b, r *mat.Dense, perm mat.Perm, lo, hi int, acc *mat.Dense, tmp []float64) {
	n := b.Cols
	for q := lo; q < hi; q += fusedBlockRows {
		qhi := q + fusedBlockRows
		if qhi > hi {
			qhi = hi
		}
		if perm != nil {
			for i := q; i < qhi; i++ {
				row := b.Data[i*b.Stride : i*b.Stride+n]
				copy(tmp, row)
				for j, v := range perm {
					row[j] = tmp[v]
				}
			}
		}
		fusedTrsmRange(b, r, q, qhi)
		fusedSyrkRange(b, q, qhi, acc)
	}
}

// fusedTrsmRange solves rows [lo, hi) of B in place against the upper
// triangular R: X := X·R⁻¹. Unlike the streaming trsmRightRange, the row
// block here is already L1 resident, so the solve is panel blocked for
// arithmetic intensity rather than for stream locality: for each 4-wide
// column panel the 4×4 diagonal block is solved by substitution, then
// the trailing columns receive one rank-4 update whose inner loop does
// 32 flops per 12 memory operations across a 4-row quad. The panel walk
// is identical for every row, so the result is a deterministic function
// of (lo, hi) grouping — anchored at the micro-block start — and never
// of the engine width.
//
//repolint:hotpath
func fusedTrsmRange(b, r *mat.Dense, lo, hi int) {
	n := b.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		x0 := b.Data[i*b.Stride : i*b.Stride+n]
		x1 := b.Data[(i+1)*b.Stride : (i+1)*b.Stride+n]
		x2 := b.Data[(i+2)*b.Stride : (i+2)*b.Stride+n]
		x3 := b.Data[(i+3)*b.Stride : (i+3)*b.Stride+n]
		k0 := 0
		for ; k0+4 <= n; k0 += 4 {
			r0 := r.Data[k0*r.Stride : k0*r.Stride+n]
			r1 := r.Data[(k0+1)*r.Stride : (k0+1)*r.Stride+n]
			r2 := r.Data[(k0+2)*r.Stride : (k0+2)*r.Stride+n]
			r3 := r.Data[(k0+3)*r.Stride : (k0+3)*r.Stride+n]
			inv0 := 1 / r0[k0]
			inv1 := 1 / r1[k0+1]
			inv2 := 1 / r2[k0+2]
			inv3 := 1 / r3[k0+3]
			// Substitution on the 4×4 diagonal panel, one quad row at
			// a time.
			v00 := x0[k0] * inv0
			v01 := (x0[k0+1] - v00*r0[k0+1]) * inv1
			v02 := (x0[k0+2] - v00*r0[k0+2] - v01*r1[k0+2]) * inv2
			v03 := (x0[k0+3] - v00*r0[k0+3] - v01*r1[k0+3] - v02*r2[k0+3]) * inv3
			x0[k0], x0[k0+1], x0[k0+2], x0[k0+3] = v00, v01, v02, v03
			v10 := x1[k0] * inv0
			v11 := (x1[k0+1] - v10*r0[k0+1]) * inv1
			v12 := (x1[k0+2] - v10*r0[k0+2] - v11*r1[k0+2]) * inv2
			v13 := (x1[k0+3] - v10*r0[k0+3] - v11*r1[k0+3] - v12*r2[k0+3]) * inv3
			x1[k0], x1[k0+1], x1[k0+2], x1[k0+3] = v10, v11, v12, v13
			v20 := x2[k0] * inv0
			v21 := (x2[k0+1] - v20*r0[k0+1]) * inv1
			v22 := (x2[k0+2] - v20*r0[k0+2] - v21*r1[k0+2]) * inv2
			v23 := (x2[k0+3] - v20*r0[k0+3] - v21*r1[k0+3] - v22*r2[k0+3]) * inv3
			x2[k0], x2[k0+1], x2[k0+2], x2[k0+3] = v20, v21, v22, v23
			v30 := x3[k0] * inv0
			v31 := (x3[k0+1] - v30*r0[k0+1]) * inv1
			v32 := (x3[k0+2] - v30*r0[k0+2] - v31*r1[k0+2]) * inv2
			v33 := (x3[k0+3] - v30*r0[k0+3] - v31*r1[k0+3] - v32*r2[k0+3]) * inv3
			x3[k0], x3[k0+1], x3[k0+2], x3[k0+3] = v30, v31, v32, v33
			// Rank-4 update of the trailing columns.
			for j := k0 + 4; j < n; j++ {
				w0, w1, w2, w3 := r0[j], r1[j], r2[j], r3[j]
				x0[j] -= v00*w0 + v01*w1 + v02*w2 + v03*w3
				x1[j] -= v10*w0 + v11*w1 + v12*w2 + v13*w3
				x2[j] -= v20*w0 + v21*w1 + v22*w2 + v23*w3
				x3[j] -= v30*w0 + v31*w1 + v32*w2 + v33*w3
			}
		}
		// Remainder columns (n not a multiple of 4): plain substitution.
		for k := k0; k < n; k++ {
			rk := r.Data[k*r.Stride : k*r.Stride+n]
			inv := 1 / rk[k]
			v0 := x0[k] * inv
			v1 := x1[k] * inv
			v2 := x2[k] * inv
			v3 := x3[k] * inv
			x0[k], x1[k], x2[k], x3[k] = v0, v1, v2, v3
			for j := k + 1; j < n; j++ {
				rv := rk[j]
				x0[j] -= v0 * rv
				x1[j] -= v1 * rv
				x2[j] -= v2 * rv
				x3[j] -= v3 * rv
			}
		}
	}
	// Remainder rows: single-row panel solve with the same column walk.
	for ; i < hi; i++ {
		x := b.Data[i*b.Stride : i*b.Stride+n]
		k0 := 0
		for ; k0+4 <= n; k0 += 4 {
			r0 := r.Data[k0*r.Stride : k0*r.Stride+n]
			r1 := r.Data[(k0+1)*r.Stride : (k0+1)*r.Stride+n]
			r2 := r.Data[(k0+2)*r.Stride : (k0+2)*r.Stride+n]
			r3 := r.Data[(k0+3)*r.Stride : (k0+3)*r.Stride+n]
			v0 := x[k0] / r0[k0]
			v1 := (x[k0+1] - v0*r0[k0+1]) / r1[k0+1]
			v2 := (x[k0+2] - v0*r0[k0+2] - v1*r1[k0+2]) / r2[k0+2]
			v3 := (x[k0+3] - v0*r0[k0+3] - v1*r1[k0+3] - v2*r2[k0+3]) / r3[k0+3]
			x[k0], x[k0+1], x[k0+2], x[k0+3] = v0, v1, v2, v3
			for j := k0 + 4; j < n; j++ {
				x[j] -= v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
			}
		}
		for k := k0; k < n; k++ {
			rk := r.Data[k*r.Stride : k*r.Stride+n]
			v := x[k] / rk[k]
			x[k] = v
			for j := k + 1; j < n; j++ {
				x[j] -= v * rk[j]
			}
		}
	}
}

// fusedSyrkRange accumulates the Gram contribution of rows [lo, hi) of B
// into the upper triangle of acc: acc += BᵀB over that row range. The
// summation rows are consumed in ascending quads and, within a quad, each
// acc element receives one fused 4-term dot — the order is a function of
// (lo, hi) alone, so any engine width reproduces the same bits. Output
// rows are paired so the quad's four source rows are loaded once per two
// accumulator rows: 32 flops per 8 memory operations in the inner loop,
// versus 8 per 6 for the streaming syrkTile (which optimizes for DRAM
// traffic the fused pass has already eliminated).
//
//repolint:hotpath
func fusedSyrkRange(b *mat.Dense, lo, hi int, acc *mat.Dense) {
	n := b.Cols
	k := lo
	for ; k+4 <= hi; k += 4 {
		r0 := b.Data[k*b.Stride : k*b.Stride+n]
		r1 := b.Data[(k+1)*b.Stride : (k+1)*b.Stride+n]
		r2 := b.Data[(k+2)*b.Stride : (k+2)*b.Stride+n]
		r3 := b.Data[(k+3)*b.Stride : (k+3)*b.Stride+n]
		i := 0
		for ; i+2 <= n; i += 2 {
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			di1 := acc.Data[(i+1)*acc.Stride : (i+1)*acc.Stride+n]
			v00, v10, v20, v30 := r0[i], r1[i], r2[i], r3[i]
			v01, v11, v21, v31 := r0[i+1], r1[i+1], r2[i+1], r3[i+1]
			di[i] += v00*v00 + v10*v10 + v20*v20 + v30*v30
			di[i+1] += v00*v01 + v10*v11 + v20*v21 + v30*v31
			di1[i+1] += v01*v01 + v11*v11 + v21*v21 + v31*v31
			for j := i + 2; j < n; j++ {
				w0, w1, w2, w3 := r0[j], r1[j], r2[j], r3[j]
				di[j] += v00*w0 + v10*w1 + v20*w2 + v30*w3
				di1[j] += v01*w0 + v11*w1 + v21*w2 + v31*w3
			}
		}
		if i < n {
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			v0, v1, v2, v3 := r0[i], r1[i], r2[i], r3[i]
			for j := i; j < n; j++ {
				di[j] += v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
			}
		}
	}
	// Remainder summation rows: rank-1 accumulation.
	for ; k < hi; k++ {
		rk := b.Data[k*b.Stride : k*b.Stride+n]
		for i := 0; i < n; i++ {
			v := rk[i]
			if v == 0 {
				continue
			}
			di := acc.Data[i*acc.Stride : i*acc.Stride+n]
			for j := i; j < n; j++ {
				di[j] += v * rk[j]
			}
		}
	}
}

// addUpper accumulates the upper triangle of src into dst.
func addUpper(dst, src *mat.Dense) {
	for i := 0; i < dst.Rows; i++ {
		drow := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		srow := src.Data[i*src.Stride : i*src.Stride+src.Cols]
		for j := i; j < dst.Cols; j++ {
			drow[j] += srow[j]
		}
	}
}
