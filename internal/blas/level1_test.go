package blas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
	mustPanicB(t, func() { Dot([]float64{1}, []float64{1, 2}) })
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy y = %v, want %v", y, want)
		}
	}
	Axpy(0, []float64{9, 9, 9}, y)
	for i := range y {
		if y[i] != want[i] {
			t.Fatal("Axpy with alpha=0 must be a no-op")
		}
	}
	mustPanicB(t, func() { Axpy(1, []float64{1}, []float64{1, 2}) })
}

func TestScal(t *testing.T) {
	x := []float64{1, -2, 3}
	Scal(-2, x)
	want := []float64{-2, 4, -6}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Scal x = %v, want %v", x, want)
		}
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %v, want 0", got)
	}
	// Overflow guard.
	got := Nrm2([]float64{1e300, 1e300})
	if math.IsInf(got, 0) {
		t.Fatal("Nrm2 overflowed")
	}
	want := 1e300 * math.Sqrt2
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Nrm2 = %v, want %v", got, want)
	}
	// Underflow guard.
	got = Nrm2([]float64{1e-300, 1e-300})
	want = 1e-300 * math.Sqrt2
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Nrm2 tiny = %v, want %v", got, want)
	}
}

func TestNrm2MatchesSumSquares(t *testing.T) {
	f := func(xs []float64) bool {
		// Keep magnitudes moderate so the naive sum doesn't overflow.
		for i := range xs {
			xs[i] = math.Mod(xs[i], 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		a, b := Nrm2(xs), math.Sqrt(SumSquares(xs))
		if b == 0 {
			return a == 0
		}
		return math.Abs(a-b)/b < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIamax(t *testing.T) {
	if got := Iamax([]float64{1, -5, 3}); got != 1 {
		t.Fatalf("Iamax = %d, want 1", got)
	}
	if got := Iamax([]float64{2, -2}); got != 0 {
		t.Fatalf("Iamax tie = %d, want 0 (first)", got)
	}
	if got := Iamax(nil); got != -1 {
		t.Fatalf("Iamax(nil) = %d, want -1", got)
	}
}

func TestSwapCopy(t *testing.T) {
	x, y := []float64{1, 2}, []float64{3, 4}
	Swap(x, y)
	if x[0] != 3 || y[1] != 2 {
		t.Fatalf("Swap: x=%v y=%v", x, y)
	}
	Copy(x, y)
	if y[0] != 3 || y[1] != 4 {
		t.Fatalf("Copy: y=%v", y)
	}
	mustPanicB(t, func() { Swap([]float64{1}, []float64{1, 2}) })
	mustPanicB(t, func() { Copy([]float64{1}, []float64{1, 2}) })
}

func mustPanicB(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
