package blas

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// Backend is a pluggable implementation of the four hot kernels that
// dominate every factorization in this repo: the Gram/SYRK accumulation,
// GEMM, the right-side TRSM of Cholesky QR, and the fused
// permute→TRSM→Gram streaming pass. The exported package functions
// (Gemm, SyrkUpperTrans, TrsmRightUpperNoTrans, PermTrsmGramFused, Gram)
// stay the only entry points callers use; they validate arguments, apply
// beta scaling, open trace spans with the backend label, and then
// dispatch to the backend carried by the engine (see parallel.Engine's
// opaque backend handle). A nil or unlabeled engine dispatches to the
// default "native" backend, whose methods run the exact pure-Go packed
// kernels this package has always shipped — bit for bit.
//
// Contract every backend must honor (enforced by the conformance suite
// in backend_conformance_test.go):
//
//   - Results match the float64 reference kernels to the backend's own
//     GramTol (fp64 backends: a few ULP; reduced-precision backends:
//     their accumulation precision).
//   - Width determinism: TrsmRightUpper and PermTrsmGram must be
//     bit-identical across engine widths — these feed the dist-lockstep
//     CQRRPT path, where replicated ranks diverge on a single bit.
//     Reductions in PermTrsmGram must therefore use fixed-shape
//     partitions (fusedSlots-style), never width-dependent ones.
//     GemmAcc and SyrkUpperAcc may partition their reductions by width
//     (the native ones do) but must stay within GramTol of the
//     width-1 result.
//   - The sequential hot path (width-1 engine) is allocation-free after
//     pool warmup.
type Backend interface {
	// GemmAcc accumulates C += alpha·op(A)·op(B). The dispatcher has
	// already validated shapes, applied beta to C, and returned early for
	// alpha == 0 or empty dimensions.
	GemmAcc(e *parallel.Engine, tA, tB Transpose, alpha float64, a, b, c *mat.Dense)
	// SyrkUpperAcc accumulates the upper triangle of C += alpha·AᵀA.
	// beta scaling and the alpha == 0 / empty early-outs happen in the
	// dispatcher.
	SyrkUpperAcc(e *parallel.Engine, alpha float64, a, c *mat.Dense)
	// TrsmRightUpper solves B := B·R⁻¹ in place for upper triangular R.
	// The dispatcher has already rejected singular R.
	TrsmRightUpper(e *parallel.Engine, b, r *mat.Dense)
	// PermTrsmGram applies B := (B·P)·R⁻¹ and accumulates the upper
	// triangle of G := BᵀB into the pre-zeroed G in one logical pass.
	// The dispatcher symmetrizes G afterwards.
	PermTrsmGram(e *parallel.Engine, b *mat.Dense, perm mat.Perm, r, g *mat.Dense)
	// GramTol reports the relative accuracy of the backend's Gram-type
	// accumulation against an exact float64 reference — the tolerance the
	// conformance suite verifies the backend against. fp64 backends
	// report ~1e-10; the fp32-accumulate backend reports its single
	// precision bound.
	GramTol() float64
}

// Handle is a registered backend: the implementation plus its registry
// name and trace label. Engines carry a *Handle as their opaque backend
// value; Lookup returns the Handle for a name.
type Handle struct {
	name      string
	effective string // name of the implementation actually running
	impl      Backend
	traceID   int
}

// Name returns the name the backend registered under.
func (h *Handle) Name() string { return h.name }

// Effective returns the name of the implementation that actually serves
// this handle's kernels. It differs from Name only for fallback aliases:
// in a build without the cgoblas tag, Lookup("cgoblas") succeeds but
// Effective reports "native".
func (h *Handle) Effective() string { return h.effective }

// GramTol exposes the backend's conformance tolerance (see
// Backend.GramTol).
func (h *Handle) GramTol() float64 { return h.impl.GramTol() }

var registry struct {
	mu sync.RWMutex
	m  map[string]*Handle
}

// Register adds a backend under the given name. It fails (rather than
// panicking) on an empty name or a duplicate registration so tests and
// external registrants get a diagnosable error; the built-in backends use
// mustRegister at init.
func Register(name string, b Backend) error {
	return register(name, name, b)
}

func register(name, effective string, b Backend) error {
	if name == "" {
		return fmt.Errorf("blas: Register with empty backend name")
	}
	if b == nil {
		return fmt.Errorf("blas: Register %q with nil backend", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]*Handle)
	}
	if _, ok := registry.m[name]; ok {
		return fmt.Errorf("blas: backend %q already registered", name)
	}
	registry.m[name] = &Handle{
		name:      name,
		effective: effective,
		impl:      b,
		traceID:   trace.RegisterBackendLabel(effective),
	}
	return nil
}

func mustRegister(name string, b Backend) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// registerFallback registers name as an alias served by the effective
// backend's implementation — the no-op-fallback pattern that keeps
// build-tag-gated backends selectable (and their selection meaningful) in
// builds that exclude the real implementation.
func registerFallback(name, effective string, b Backend) {
	if err := register(name, effective, b); err != nil {
		panic(err)
	}
}

// Lookup resolves a backend name to its Handle. The empty name means the
// default backend ("native"). Unknown names return an error listing what
// is registered, so a mistyped Options.Backend is diagnosable.
func Lookup(name string) (*Handle, error) {
	if name == "" {
		return nativeHandle, nil
	}
	registry.mu.RLock()
	h, ok := registry.m[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("blas: unknown backend %q (registered: %v)", name, Backends())
	}
	return h, nil
}

// Backends returns the sorted names of every registered backend.
func Backends() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AttachBackend returns an engine derived from e that dispatches the hot
// kernels through the named backend ("" keeps the default). The returned
// engine carries the backend through WithContext/WithWorkers derivations.
func AttachBackend(e *parallel.Engine, name string) (*parallel.Engine, error) {
	h, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if h == nativeHandle && e.Backend() == nil {
		return e, nil
	}
	return e.WithBackend(h), nil
}

// backendFor resolves the backend handle an engine carries; nil engines
// and engines without a handle use the native backend. A foreign value in
// the engine's backend slot (impossible through AttachBackend) also falls
// back to native rather than panicking deep inside a kernel.
func backendFor(e *parallel.Engine) *Handle {
	if h, ok := e.Backend().(*Handle); ok && h != nil {
		return h
	}
	return nativeHandle
}
