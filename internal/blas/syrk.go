package blas

import (
	"fmt"
	"sync"

	"repro/internal/parallel"
	"repro/mat"
)

// SyrkUpperTrans computes the upper triangle of C = alpha·AᵀA + beta·C for
// symmetric C (n×n) and A (m×n). Elements strictly below the diagonal of C
// are left untouched. The summation over the long dimension m is split
// across workers with private accumulators, exactly mirroring how the
// distributed algorithm forms local Gram blocks before the Allreduce.
func SyrkUpperTrans(alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("blas: SyrkUpperTrans C %d×%d, want %d×%d", c.Rows, c.Cols, n, n))
	}
	for i := 0; i < n; i++ {
		row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := i; j < n; j++ {
			row[j] *= beta
		}
	}
	if alpha == 0 || a.Rows == 0 || n == 0 {
		return
	}
	// Four rows of A are consumed per pass so each touched element of the
	// accumulator amortizes four multiply-adds (register blocking).
	seq := func(lo, hi int, dst *mat.Dense) {
		l := lo
		for ; l+4 <= hi; l += 4 {
			r0 := a.Data[l*a.Stride : l*a.Stride+n]
			r1 := a.Data[(l+1)*a.Stride : (l+1)*a.Stride+n]
			r2 := a.Data[(l+2)*a.Stride : (l+2)*a.Stride+n]
			r3 := a.Data[(l+3)*a.Stride : (l+3)*a.Stride+n]
			for i := 0; i < n; i++ {
				v0 := alpha * r0[i]
				v1 := alpha * r1[i]
				v2 := alpha * r2[i]
				v3 := alpha * r3[i]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
				for j := i; j < n; j++ {
					drow[j] += v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
				}
			}
		}
		for ; l < hi; l++ {
			arow := a.Data[l*a.Stride : l*a.Stride+n]
			for i, av := range arow {
				av *= alpha
				if av == 0 {
					continue
				}
				drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
				for j := i; j < n; j++ {
					drow[j] += av * arow[j]
				}
			}
		}
	}
	w := parallel.MaxWorkers()
	flops := a.Rows * n * n // ≈ m·n²
	if flops < gemmParallelFlops || w == 1 {
		seq(0, a.Rows, c)
		return
	}
	minChunk := gemmParallelFlops / (n*n + 1)
	ranges := parallel.Split(a.Rows, w, minChunk+1)
	if len(ranges) <= 1 {
		seq(0, a.Rows, c)
		return
	}
	acc := make([]*mat.Dense, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for bi, r := range ranges {
		go func(bi int, r parallel.Range) {
			defer wg.Done()
			buf := mat.NewDense(n, n)
			seq(r.Lo, r.Hi, buf)
			acc[bi] = buf
		}(bi, r)
	}
	wg.Wait()
	for _, buf := range acc {
		for i := 0; i < n; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			brow := buf.Data[i*buf.Stride : i*buf.Stride+buf.Cols]
			for j := i; j < n; j++ {
				crow[j] += brow[j]
			}
		}
	}
}

// Gram computes the full symmetric Gram matrix W = AᵀA: the upper triangle
// via SyrkUpperTrans and the lower triangle by mirroring. This is the
// kernel on line 1 of CholQR (Algorithm 2) and line 3 of Ite-CholQR-CP
// (Algorithm 4).
func Gram(w *mat.Dense, a *mat.Dense) {
	SyrkUpperTrans(1, a, 0, w)
	SymmetrizeFromUpper(w)
}

// SymmetrizeFromUpper copies the strict upper triangle of w onto the strict
// lower triangle.
func SymmetrizeFromUpper(w *mat.Dense) {
	if w.Rows != w.Cols {
		panic(fmt.Sprintf("blas: SymmetrizeFromUpper on %d×%d", w.Rows, w.Cols))
	}
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			w.Data[j*w.Stride+i] = w.Data[i*w.Stride+j]
		}
	}
}
