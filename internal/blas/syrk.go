package blas

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// syrkJBlock is the column-tile width of the wide-n SYRK path: the live
// accumulator segment per row quad is at most syrkJBlock doubles, so it
// stays in L1 while the quad streams. Narrow problems (n ≤ syrkJBlock)
// keep the untiled kernel, whose whole accumulator row already fits.
const syrkJBlock = 256

// SyrkUpperTrans computes the upper triangle of C = alpha·AᵀA + beta·C for
// symmetric C (n×n) and A (m×n). Elements strictly below the diagonal of C
// are left untouched. Validation, beta scaling, and trace attribution run
// here; the accumulation dispatches to the compute backend carried by the
// engine (nil or unlabeled engines use the native backend, whose
// summation over the long dimension m is split across pool workers with
// pooled private accumulators, exactly mirroring how the distributed
// algorithm forms local Gram blocks before the Allreduce).
func SyrkUpperTrans(e *parallel.Engine, alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("blas: SyrkUpperTrans C %d×%d, want %d×%d", c.Rows, c.Cols, n, n))
	}
	for i := 0; i < n; i++ {
		row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := i; j < n; j++ {
			row[j] *= beta
		}
	}
	if alpha == 0 || a.Rows == 0 || n == 0 {
		return
	}
	bk := backendFor(e)
	sp := trace.BackendRegion(trace.KernelSyrk, bk.traceID)
	defer sp.End()
	trace.AddFlopsBackend(trace.KernelSyrk, bk.traceID, int64(a.Rows)*int64(n)*int64(n+1))
	bk.impl.SyrkUpperAcc(e, alpha, a, c)
}

// SyrkUpperAcc is the native upper(C) += alpha·AᵀA accumulation.
func (nativeBackend) SyrkUpperAcc(e *parallel.Engine, alpha float64, a, c *mat.Dense) {
	n := a.Cols
	w := e.Workers()
	flops := mulFlops(a.Rows, n, n) // ≈ m·n²
	if flops < gemmParallelFlops || w == 1 {
		syrkRange(alpha, a, 0, a.Rows, c)
		return
	}
	minChunk := gemmParallelFlops / (mulFlops(n, n) + 1)
	ranges := parallel.Split(a.Rows, w, minChunk+1)
	if len(ranges) <= 1 {
		syrkRange(alpha, a, 0, a.Rows, c)
		return
	}
	bufs := make([]*mat.Dense, len(ranges))
	tasks := make([]func(), len(ranges))
	for bi, r := range ranges {
		tasks[bi] = func() {
			buf := mat.GetWorkspace(n, n, true)
			syrkRange(alpha, a, r.Lo, r.Hi, buf)
			bufs[bi] = buf
		}
	}
	e.Do(tasks...)
	for _, buf := range bufs {
		for i := 0; i < n; i++ {
			crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
			brow := buf.Data[i*buf.Stride : i*buf.Stride+buf.Cols]
			for j := i; j < n; j++ {
				crow[j] += brow[j]
			}
		}
		mat.PutWorkspace(buf)
	}
}

// syrkRange accumulates dst += alpha·A(lo:hi,:)ᵀ·A(lo:hi,:) (upper
// triangle only). Four rows of A are consumed per pass so each touched
// accumulator element amortizes four multiply-adds (register blocking);
// for wide n the columns are additionally tiled so the active accumulator
// segment stays cache resident.
func syrkRange(alpha float64, a *mat.Dense, lo, hi int, dst *mat.Dense) {
	n := a.Cols
	if n <= syrkJBlock {
		syrkTile(alpha, a, 0, n, lo, hi, dst)
		return
	}
	for j0 := 0; j0 < n; j0 += syrkJBlock {
		syrkTile(alpha, a, j0, min(j0+syrkJBlock, n), lo, hi, dst)
	}
}

// syrkTile accumulates the columns [j0, j1) of the upper triangle of
// dst += alpha·AᵀA over summation rows [lo, hi).
//
//repolint:hotpath
func syrkTile(alpha float64, a *mat.Dense, j0, j1, lo, hi int, dst *mat.Dense) {
	l := lo
	for ; l+4 <= hi; l += 4 {
		r0 := a.Data[l*a.Stride : l*a.Stride+j1]
		r1 := a.Data[(l+1)*a.Stride : (l+1)*a.Stride+j1]
		r2 := a.Data[(l+2)*a.Stride : (l+2)*a.Stride+j1]
		r3 := a.Data[(l+3)*a.Stride : (l+3)*a.Stride+j1]
		for i := 0; i < j1; i++ {
			v0 := alpha * r0[i]
			v1 := alpha * r1[i]
			v2 := alpha * r2[i]
			v3 := alpha * r3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			drow := dst.Data[i*dst.Stride : i*dst.Stride+j1]
			for j := max(i, j0); j < j1; j++ {
				drow[j] += v0*r0[j] + v1*r1[j] + v2*r2[j] + v3*r3[j]
			}
		}
	}
	for ; l < hi; l++ {
		arow := a.Data[l*a.Stride : l*a.Stride+j1]
		for i := 0; i < j1; i++ {
			av := alpha * arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Data[i*dst.Stride : i*dst.Stride+j1]
			for j := max(i, j0); j < j1; j++ {
				drow[j] += av * arow[j]
			}
		}
	}
}

// Gram computes the full symmetric Gram matrix W = AᵀA: the upper triangle
// via SyrkUpperTrans and the lower triangle by mirroring. This is the
// kernel on line 1 of CholQR (Algorithm 2) and line 3 of Ite-CholQR-CP
// (Algorithm 4).
func Gram(e *parallel.Engine, w *mat.Dense, a *mat.Dense) {
	SyrkUpperTrans(e, 1, a, 0, w)
	SymmetrizeFromUpper(w)
}

// SymmetrizeFromUpper copies the strict upper triangle of w onto the strict
// lower triangle.
func SymmetrizeFromUpper(w *mat.Dense) {
	if w.Rows != w.Cols {
		panic(fmt.Sprintf("blas: SymmetrizeFromUpper on %d×%d", w.Rows, w.Cols))
	}
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			w.Data[j*w.Stride+i] = w.Data[i*w.Stride+j]
		}
	}
}
