package blas

// Kernel benchmarks: the throughput asymmetry between these Level-3 and
// Level-2 kernels is the mechanism behind every performance figure in the
// paper. GFLOPS are reported as custom metrics.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/mat"
)

func benchDense(m, n int) *mat.Dense {
	rng := rand.New(rand.NewSource(1))
	a := mat.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func reportGFLOPS(b *testing.B, flopsPerOp float64) {
	b.Helper()
	n := b.N
	if n < 1 {
		n = 1
	}
	per := b.Elapsed() / time.Duration(n)
	if per > 0 {
		b.ReportMetric(flopsPerOp/per.Seconds()/1e9, "GFLOPS")
	}
}

func BenchmarkGram(b *testing.B) {
	for _, sh := range []struct{ m, n int }{{20000, 16}, {20000, 64}, {20000, 256}} {
		a := benchDense(sh.m, sh.n)
		w := mat.NewDense(sh.n, sh.n)
		b.Run(fmt.Sprintf("m=%d/n=%d", sh.m, sh.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Gram(nil, w, a)
			}
			reportGFLOPS(b, 2*float64(sh.m)*float64(sh.n)*float64(sh.n))
		})
	}
}

func BenchmarkTrsmRight(b *testing.B) {
	for _, sh := range []struct{ m, n int }{{20000, 64}, {20000, 256}} {
		a := benchDense(sh.m, sh.n)
		rng := rand.New(rand.NewSource(2))
		r := upperTriangular(rng, sh.n)
		b.Run(fmt.Sprintf("m=%d/n=%d", sh.m, sh.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work := a.Clone()
				b.StartTimer()
				TrsmRightUpperNoTrans(nil, work, r)
				b.StopTimer()
			}
			b.StartTimer()
		})
	}
}

// BenchmarkPermTrsmGramFused measures the fused streaming pass against
// the separate permute + TRSM + SYRK sequence it replaces (same flop
// count, so the GFLOPS ratio is the wall-clock speedup). cmd/bench-kernels
// runs the acceptance-sized m=1_000_000 comparison; this benchmark is the
// quick-iteration version.
func BenchmarkPermTrsmGramFused(b *testing.B) {
	const m, n = 200000, 64
	a := benchDense(m, n)
	rng := rand.New(rand.NewSource(2))
	r := upperTriangular(rng, n)
	perm := mat.IdentityPerm(n)
	for i := range perm {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	g := mat.NewDense(n, n)
	flops := float64(m)*float64(n)*float64(n) + float64(m)*float64(n)*float64(n+1)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := a.Clone()
			b.StartTimer()
			PermTrsmGramFused(nil, work, perm, r, g)
			b.StopTimer()
		}
		b.StartTimer()
		reportGFLOPS(b, flops)
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := a.Clone()
			b.StartTimer()
			mat.PermuteColsInPlace(work, perm)
			TrsmRightUpperNoTrans(nil, work, r)
			Gram(nil, g, work)
			b.StopTimer()
		}
		b.StartTimer()
		reportGFLOPS(b, flops)
	})
}

func BenchmarkGemmNN(b *testing.B) {
	const m, k, n = 4000, 256, 256
	a := benchDense(m, k)
	bb := benchDense(k, n)
	c := mat.NewDense(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(nil, NoTrans, NoTrans, 1, a, bb, 0, c)
	}
	reportGFLOPS(b, 2*float64(m)*float64(k)*float64(n))
}

func BenchmarkGemvTrans(b *testing.B) {
	const m, n = 20000, 256
	a := benchDense(m, n)
	x := make([]float64, m)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(nil, Trans, 1, a, x, 0, y)
	}
	reportGFLOPS(b, 2*float64(m)*float64(n))
}

func BenchmarkGer(b *testing.B) {
	const m, n = 20000, 256
	a := benchDense(m, n)
	x := make([]float64, m)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1e-9
	}
	for j := range y {
		y[j] = 1e-9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Ger(nil, 1, x, y, a)
	}
	reportGFLOPS(b, 2*float64(m)*float64(n))
}
