// Package blas implements the dense linear-algebra kernels the library is
// built on: Level-1 vector operations, Level-2 matrix-vector operations,
// and cache-blocked, goroutine-parallel Level-3 matrix-matrix operations.
//
// It plays the role of the vendor BLAS (Intel MKL, Fujitsu SSL2) in the
// paper's reference implementation. The performance property that matters
// for reproducing the paper is preserved: Level-3 kernels (Gemm, Syrk,
// Trsm, Trmm) are cache-blocked and parallel across cores, while Level-2
// kernels (Gemv, Ger) stream the whole matrix through memory once per call
// and are bandwidth-bound. Cholesky-QR-type algorithms spend ~all their
// time in Level 3; Householder QRCP spends half its flops in Level 2 —
// that asymmetry is what Figures 4–7 of the paper measure.
//
// All kernels operate on row-major mat.Dense values and respect strides,
// so they compose with submatrix views without copying.
package blas

import (
	"fmt"

	"repro/mat"
)

// Transpose selects op(X) = X or Xᵀ for Level-3 kernels.
type Transpose bool

const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

func dims(t Transpose, m *mat.Dense) (rows, cols int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

func checkGemm(tA, tB Transpose, a, b, c *mat.Dense) (m, n, k int) {
	am, ak := dims(tA, a)
	bk, bn := dims(tB, b)
	if ak != bk {
		panic(fmt.Sprintf("blas: Gemm inner dimension mismatch %d vs %d", ak, bk))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: Gemm output %d×%d, want %d×%d", c.Rows, c.Cols, am, bn))
	}
	return am, bn, ak
}
