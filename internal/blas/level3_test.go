package blas

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/mat"
)

func TestGemmAllTransCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	combos := []struct{ tA, tB Transpose }{
		{NoTrans, NoTrans}, {Trans, NoTrans}, {NoTrans, Trans}, {Trans, Trans},
	}
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 4, 5}, {7, 2, 9}, {16, 16, 16}, {5, 31, 2},
	}
	for _, cb := range combos {
		for _, sh := range shapes {
			ar, ac := sh.m, sh.k
			if cb.tA == Trans {
				ar, ac = sh.k, sh.m
			}
			br, bc := sh.k, sh.n
			if cb.tB == Trans {
				br, bc = sh.n, sh.k
			}
			a := randDenseStrided(rng, ar, ac)
			b := randDenseStrided(rng, br, bc)
			c := randDenseStrided(rng, sh.m, sh.n)
			want := c.Clone()
			naiveGemm(cb.tA, cb.tB, 1.3, a, b, -0.7, want)
			Gemm(nil, cb.tA, cb.tB, 1.3, a, b, -0.7, c)
			if !mat.EqualApprox(c, want, 1e-10) {
				t.Fatalf("Gemm(nil, tA=%v,tB=%v) shape %+v disagrees with naive", cb.tA, cb.tB, sh)
			}
		}
	}
}

func TestGemmBetaZeroOverwritesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 4, 3)
	b := randDense(rng, 3, 5)
	c := mat.NewDense(4, 5)
	for i := range c.Data {
		c.Data[i] = 1e300 // must be overwritten, not scaled into Inf/NaN
	}
	want := mat.NewDense(4, 5)
	naiveGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	Gemm(nil, NoTrans, NoTrans, 1, a, b, 0, c)
	if !mat.EqualApprox(c, want, 1e-12) {
		t.Fatal("beta=0 must fully overwrite C")
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDense(rng, 3, 3)
	b := randDense(rng, 3, 3)
	c := randDense(rng, 3, 3)
	want := c.Clone()
	for i := range want.Data {
		want.Data[i] *= 2
	}
	Gemm(nil, NoTrans, NoTrans, 0, a, b, 2, c)
	if !mat.EqualApprox(c, want, 1e-14) {
		t.Fatal("alpha=0 must only scale C by beta")
	}
}

func TestGemmDimensionPanics(t *testing.T) {
	mustPanicB(t, func() {
		Gemm(nil, NoTrans, NoTrans, 1, mat.NewDense(2, 3), mat.NewDense(4, 2), 0, mat.NewDense(2, 2))
	})
	mustPanicB(t, func() {
		Gemm(nil, NoTrans, NoTrans, 1, mat.NewDense(2, 3), mat.NewDense(3, 2), 0, mat.NewDense(3, 2))
	})
}

func TestGemmLargeParallelTall(t *testing.T) {
	// Tall-skinny Gram-type product on the parallel path: C = AᵀB.
	rng := rand.New(rand.NewSource(14))
	const m, n = 20000, 24
	a := randDense(rng, m, n)
	b := randDense(rng, m, n)
	c := mat.NewDense(n, n)
	Gemm(parallel.NewEngine(4), Trans, NoTrans, 1, a, b, 0, c)

	want := mat.NewDense(n, n)
	Gemm(parallel.NewEngine(1), Trans, NoTrans, 1, a, b, 0, want)

	if !mat.EqualApprox(c, want, 1e-8) {
		t.Fatal("parallel Aᵀ·B reduction disagrees with sequential")
	}
}

func TestGemmLargeParallelNN(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const m, k, n = 3000, 40, 40
	a := randDense(rng, m, k)
	b := randDense(rng, k, n)
	c := mat.NewDense(m, n)
	Gemm(parallel.NewEngine(4), NoTrans, NoTrans, 1, a, b, 0, c)
	want := mat.NewDense(m, n)
	Gemm(parallel.NewEngine(1), NoTrans, NoTrans, 1, a, b, 0, want)
	if !mat.EqualApprox(c, want, 1e-9) {
		t.Fatal("parallel NN gemm disagrees with sequential")
	}
}

func TestSyrkUpperTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, m := range []int{1, 5, 100, 5000} {
		for _, n := range []int{1, 3, 17} {
			a := randDenseStrided(rng, m, n)
			c := randDenseStrided(rng, n, n)
			want := c.Clone()
			naiveSyrkUpper(1.5, a, 0.5, want)
			SyrkUpperTrans(nil, 1.5, a, 0.5, c)
			// Compare upper triangles; lower must be untouched.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					got, exp := c.At(i, j), want.At(i, j)
					if j < i {
						exp = c.At(i, j) // untouched: compare with itself trivially
						continue
					}
					if d := got - exp; d > 1e-9 || d < -1e-9 {
						t.Fatalf("Syrk m=%d n=%d at (%d,%d): %v vs %v", m, n, i, j, got, exp)
					}
				}
			}
		}
	}
}

func TestSyrkLowerUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randDense(rng, 50, 4)
	c := mat.NewDense(4, 4)
	c.Set(2, 0, 123)
	c.Set(3, 1, -7)
	SyrkUpperTrans(nil, 1, a, 0, c)
	if c.At(2, 0) != 123 || c.At(3, 1) != -7 {
		t.Fatal("SyrkUpperTrans modified the strict lower triangle")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randDense(rng, 300, 12)
	w := mat.NewDense(12, 12)
	Gram(nil, w, a)
	for i := 0; i < 12; i++ {
		if w.At(i, i) < 0 {
			t.Fatalf("Gram diagonal negative at %d", i)
		}
		for j := 0; j < 12; j++ {
			if w.At(i, j) != w.At(j, i) {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
	want := mat.NewDense(12, 12)
	naiveGemm(Trans, NoTrans, 1, a, a, 0, want)
	if !mat.EqualApprox(w, want, 1e-9) {
		t.Fatal("Gram disagrees with AᵀA")
	}
}

func TestTrsmRightUpperNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, m := range []int{1, 7, 2000} {
		for _, n := range []int{1, 4, 13} {
			r := upperTriangular(rng, n)
			b := randDenseStrided(rng, m, n)
			orig := b.Clone()
			TrsmRightUpperNoTrans(nil, b, r)
			// Check B_new · R == B_old.
			prod := mat.NewDense(m, n)
			naiveGemm(NoTrans, NoTrans, 1, b, r, 0, prod)
			if !mat.EqualApprox(prod, orig, 1e-8) {
				t.Fatalf("Trsm right m=%d n=%d: X·R != B", m, n)
			}
		}
	}
}

func TestTrsmLeftUpperTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n, cols := 9, 6
	r := upperTriangular(rng, n)
	b := randDenseStrided(rng, n, cols)
	orig := b.Clone()
	TrsmLeftUpperTrans(r, b)
	// Rᵀ·X should equal the original B.
	prod := mat.NewDense(n, cols)
	naiveGemm(Trans, NoTrans, 1, r, b, 0, prod)
	if !mat.EqualApprox(prod, orig, 1e-9) {
		t.Fatal("TrsmLeftUpperTrans: Rᵀ·X != B")
	}
}

func TestTrsmLeftUpperNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, cols := 8, 5
	r := upperTriangular(rng, n)
	b := randDenseStrided(rng, n, cols)
	orig := b.Clone()
	TrsmLeftUpperNoTrans(r, b)
	prod := mat.NewDense(n, cols)
	naiveGemm(NoTrans, NoTrans, 1, r, b, 0, prod)
	if !mat.EqualApprox(prod, orig, 1e-9) {
		t.Fatal("TrsmLeftUpperNoTrans: R·X != B")
	}
}

func TestTrsmSingularPanics(t *testing.T) {
	r := mat.Identity(3)
	r.Set(1, 1, 0)
	b := mat.NewDense(4, 3)
	mustPanicB(t, func() { TrsmRightUpperNoTrans(nil, b, r) })
	c := mat.NewDense(3, 2)
	mustPanicB(t, func() { TrsmLeftUpperTrans(r, c) })
	mustPanicB(t, func() { TrsmLeftUpperNoTrans(r, c) })
}

func TestTrmmLeftUpperNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 2, 10} {
		a := upperTriangular(rng, n)
		b := randDenseStrided(rng, n, n+2)
		want := mat.NewDense(n, n+2)
		naiveGemm(NoTrans, NoTrans, 1, a, b, 0, want)
		TrmmLeftUpperNoTrans(a, b)
		if !mat.EqualApprox(b, want, 1e-10) {
			t.Fatalf("Trmm n=%d disagrees with dense product", n)
		}
	}
}

func TestTrmmTriangularProductStaysTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 12
	a := upperTriangular(rng, n)
	b := upperTriangular(rng, n)
	TrmmLeftUpperNoTrans(a, b)
	if !b.IsUpperTriangular(0) {
		t.Fatal("product of two upper triangular matrices must be upper triangular")
	}
}

// upperTriangular generates a well-conditioned upper triangular matrix with
// unit-magnitude diagonal.
func upperTriangular(rng *rand.Rand, n int) *mat.Dense {
	r := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		r.Set(i, i, 1+rng.Float64()) // diagonal in [1,2): well conditioned
		for j := i + 1; j < n; j++ {
			r.Set(i, j, 0.5*rng.NormFloat64())
		}
	}
	return r
}
