package blas

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/mat"
)

// randUpperWellCond returns an n×n upper-triangular R with diagonal in
// [1, 2] and small off-diagonal entries, so R⁻¹ does not amplify rounding.
func randUpperWellCond(rng *rand.Rand, n int) *mat.Dense {
	r := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		r.Data[i*r.Stride+i] = 1 + rng.Float64()
		for j := i + 1; j < n; j++ {
			r.Data[i*r.Stride+j] = 0.25 * (rng.Float64() - 0.5)
		}
	}
	return r
}

// kahanUpper returns the classic n×n Kahan matrix
// diag(1, s, s², …)·(I − c·U) with s = sin θ, c = cos θ: upper triangular,
// graded, and famously adversarial for pivoted factorizations.
func kahanUpper(n int, theta float64) *mat.Dense {
	s, c := math.Sin(theta), math.Cos(theta)
	r := mat.NewDense(n, n)
	scale := 1.0
	for i := 0; i < n; i++ {
		r.Data[i*r.Stride+i] = scale
		for j := i + 1; j < n; j++ {
			r.Data[i*r.Stride+j] = -c * scale
		}
		scale *= s
	}
	return r
}

// kahanTallStack stacks row-scaled copies of the Kahan row pattern into a
// tall m×n matrix whose column norms span many orders of magnitude.
// (testmat.KahanTall cannot be used here: testmat imports internal/blas.)
func kahanTallStack(rng *rand.Rand, m, n int, theta float64) *mat.Dense {
	k := kahanUpper(n, theta)
	a := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		src := k.Data[(i%n)*k.Stride : (i%n)*k.Stride+n]
		sign := 1.0
		if rng.Intn(2) == 1 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			a.Data[i*a.Stride+j] = sign * src[j] * (1 + 1e-8*rng.NormFloat64())
		}
	}
	return a
}

func randPerm(rng *rand.Rand, n int) mat.Perm {
	return mat.Perm(rng.Perm(n))
}

// refPermTrsmGram is the unfused reference: permute, solve, then Gram as
// three separate sweeps.
func refPermTrsmGram(e *parallel.Engine, b *mat.Dense, perm mat.Perm, r, g *mat.Dense) {
	if perm != nil {
		mat.PermuteColsInPlaceEngine(e, b, perm)
	}
	TrsmRightUpperNoTrans(e, b, r)
	Gram(e, g, b)
}

// checkULPClose asserts got matches want elementwise to within a small
// relative tolerance (the fused and unfused paths may group rows into
// different 4-row TRSM quads, which changes a division into a multiply by
// reciprocal — a couple of ULPs per substitution step).
func checkULPClose(t *testing.T, name string, got, want *mat.Dense, relTol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %d×%d vs %d×%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			gv := got.Data[i*got.Stride+j]
			wv := want.Data[i*want.Stride+j]
			scale := math.Max(math.Abs(gv), math.Abs(wv))
			if scale < 1e-300 {
				continue
			}
			if math.Abs(gv-wv) > relTol*scale {
				t.Fatalf("%s[%d,%d]: fused %v vs unfused %v (rel %g)",
					name, i, j, gv, wv, math.Abs(gv-wv)/scale)
			}
		}
	}
}

func TestPermTrsmGramFusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := parallel.NewEngine(4)
	shapes := []struct{ m, n int }{
		{1, 1}, {3, 2}, {5, 3}, {63, 7}, {64, 8}, {65, 8},
		{257, 16}, {1000, 24}, {4113, 32}, {9001, 11},
	}
	for _, sh := range shapes {
		b := randDenseStrided(rng, sh.m, sh.n)
		r := randUpperWellCond(rng, sh.n)
		perm := randPerm(rng, sh.n)

		bRef := b.Clone()
		gRef := mat.NewDense(sh.n, sh.n)
		refPermTrsmGram(e, bRef, perm, r, gRef)

		g := mat.NewDense(sh.n, sh.n)
		PermTrsmGramFused(e, b, perm, r, g)

		checkULPClose(t, "B", b, bRef, 1e-11)
		checkULPClose(t, "G", g, gRef, 1e-12)
		for i := 0; i < sh.n; i++ {
			for j := 0; j < i; j++ {
				if g.Data[i*g.Stride+j] != g.Data[j*g.Stride+i] {
					t.Fatalf("m=%d n=%d: G not symmetric at (%d,%d)", sh.m, sh.n, i, j)
				}
			}
		}
	}
}

func TestPermTrsmGramFusedNilPermIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := parallel.NewEngine(2)
	b := randDense(rng, 300, 12)
	r := randUpperWellCond(rng, 12)

	bRef := b.Clone()
	gRef := mat.NewDense(12, 12)
	refPermTrsmGram(e, bRef, nil, r, gRef)

	g := mat.NewDense(12, 12)
	PermTrsmGramFused(e, b, nil, r, g)
	checkULPClose(t, "B", b, bRef, 1e-11)
	checkULPClose(t, "G", g, gRef, 1e-12)
}

// TestPermTrsmGramFusedKahan exercises the fused pass on a graded
// Kahan-type matrix solved against the Kahan triangle itself, where the
// intermediate magnitudes span many orders of magnitude.
func TestPermTrsmGramFusedKahan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := parallel.NewEngine(4)
	const m, n = 3000, 24
	b := kahanTallStack(rng, m, n, 1.2)
	r := kahanUpper(n, 1.2)
	perm := randPerm(rng, n)

	bRef := b.Clone()
	gRef := mat.NewDense(n, n)
	refPermTrsmGram(e, bRef, perm, r, gRef)

	g := mat.NewDense(n, n)
	PermTrsmGramFused(e, b, perm, r, g)
	checkULPClose(t, "B", b, bRef, 1e-11)
	checkULPClose(t, "G", g, gRef, 1e-10)
}

// TestPermTrsmGramFusedDeterministicAcrossWidths is the dist-lockstep
// contract: the fused pass must produce bit-identical B and G for every
// engine width, because distributed ranks replicate the downstream
// Cholesky on G and diverge on any single-bit difference.
func TestPermTrsmGramFusedDeterministicAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, sh := range []struct{ m, n int }{{1000, 8}, {8192, 32}, {50000, 16}} {
		b0 := randDense(rng, sh.m, sh.n)
		r := randUpperWellCond(rng, sh.n)
		perm := randPerm(rng, sh.n)

		var refB, refG *mat.Dense
		for _, w := range []int{1, 2, 8} {
			e := parallel.NewEngine(w)
			b := b0.Clone()
			g := mat.NewDense(sh.n, sh.n)
			PermTrsmGramFused(e, b, perm, r, g)
			if refB == nil {
				refB, refG = b, g
				continue
			}
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.n; j++ {
					got := b.Data[i*b.Stride+j]
					want := refB.Data[i*refB.Stride+j]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("m=%d n=%d width %d: B[%d,%d] = %x, width 1 = %x",
							sh.m, sh.n, w, i, j, math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
			for i := 0; i < sh.n; i++ {
				for j := 0; j < sh.n; j++ {
					got := g.Data[i*g.Stride+j]
					want := refG.Data[i*refG.Stride+j]
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("m=%d n=%d width %d: G[%d,%d] = %x, width 1 = %x",
							sh.m, sh.n, w, i, j, math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestPermTrsmGramFusedSequentialAllocFree pins the pooled-workspace
// invariant: once the pools are warm, the sequential fused pass performs
// zero heap allocations.
func TestPermTrsmGramFusedSequentialAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := parallel.NewEngine(1)
	const m, n = 2000, 16
	b := randDense(rng, m, n)
	r := randUpperWellCond(rng, n)
	perm := randPerm(rng, n)
	g := mat.NewDense(n, n)
	PermTrsmGramFused(e, b, perm, r, g) // warm the pools

	allocs := testing.AllocsPerRun(5, func() {
		PermTrsmGramFused(e, b, perm, r, g)
	})
	if allocs != 0 {
		t.Fatalf("sequential fused pass allocates %v times per run, want 0", allocs)
	}
}
