package blas

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/mat"
)

// The backend conformance suite: every registered backend — including
// build-tag fallbacks and anything tests register on top — must satisfy
// the Backend contract documented in backend.go. The suite runs each
// check against each name returned by Backends(), so adding a backend
// automatically puts it under test.

func backendEngine(t *testing.T, name string, w int) *parallel.Engine {
	t.Helper()
	e, err := AttachBackend(parallel.NewEngine(w), name)
	if err != nil {
		t.Fatalf("AttachBackend(%q): %v", name, err)
	}
	return e
}

// sameBits fails unless got and want are bit-identical.
func sameBits(t *testing.T, label string, got, want *mat.Dense) {
	t.Helper()
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			g := got.Data[i*got.Stride+j]
			w := want.Data[i*want.Stride+j]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s[%d,%d]: %x vs reference %x", label, i, j,
					math.Float64bits(g), math.Float64bits(w))
			}
		}
	}
}

func TestBackendConformance(t *testing.T) {
	for _, name := range Backends() {
		h, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		tol := h.GramTol()
		t.Run(name, func(t *testing.T) {
			t.Run("Gemm", func(t *testing.T) { testBackendGemm(t, name, tol) })
			t.Run("Syrk", func(t *testing.T) { testBackendSyrk(t, name, tol) })
			t.Run("Trsm", func(t *testing.T) { testBackendTrsm(t, name, tol) })
			t.Run("Fused", func(t *testing.T) { testBackendFused(t, name, tol) })
			t.Run("WidthDeterminism", func(t *testing.T) { testBackendWidthDeterminism(t, name, tol) })
			t.Run("SequentialAllocFree", func(t *testing.T) { testBackendAllocFree(t, name) })
		})
	}
}

// testBackendGemm checks all four transpose combinations against the
// elementwise reference, sized past gemmParallelFlops so the parallel
// paths engage.
func testBackendGemm(t *testing.T, name string, tol float64) {
	rng := rand.New(rand.NewSource(11))
	e := backendEngine(t, name, 4)
	const m, n, k = 150, 40, 60
	for _, tc := range []struct{ tA, tB Transpose }{
		{NoTrans, NoTrans}, {Trans, NoTrans}, {NoTrans, Trans}, {Trans, Trans},
	} {
		ar, ac, br, bc := m, k, k, n
		if tc.tA == Trans {
			ar, ac = k, m
		}
		if tc.tB == Trans {
			br, bc = n, k
		}
		a := randDenseStrided(rng, ar, ac)
		b := randDenseStrided(rng, br, bc)
		c := randDense(rng, m, n)
		want := c.Clone()
		Gemm(e, tc.tA, tc.tB, 1.5, a, b, 0.5, c)
		naiveGemm(tc.tA, tc.tB, 1.5, a, b, 0.5, want)
		checkULPClose(t, "C", c, want, math.Max(tol, 1e-12)*float64(k))
	}
}

// testBackendSyrk compares the Gram accumulation against the elementwise
// float64 reference. The error bound scales with the summation length:
// a dot product of m unit-variance terms has magnitude ~m on the
// diagonal, and a backend's GramTol is relative to that scale.
func testBackendSyrk(t *testing.T, name string, tol float64) {
	rng := rand.New(rand.NewSource(13))
	e := backendEngine(t, name, 4)
	const m, n = 4500, 16 // > 1 reduction slot, parallel path engaged
	a := randDenseStrided(rng, m, n)
	c := randDense(rng, n, n)
	want := c.Clone()
	SyrkUpperTrans(e, 2, a, 0.25, c)
	naiveSyrkUpper(2, a, 0.25, want)
	bound := tol * float64(m)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			g := c.Data[i*c.Stride+j]
			w := want.Data[i*want.Stride+j]
			if d := math.Abs(g - w); d > bound {
				t.Fatalf("G[%d,%d]: %v vs reference %v (|diff| %g > %g)", i, j, g, w, d, bound)
			}
		}
	}
}

// testBackendTrsm solves B := B·R⁻¹ and multiplies back: X·R must
// reconstruct the original B.
func testBackendTrsm(t *testing.T, name string, tol float64) {
	rng := rand.New(rand.NewSource(17))
	e := backendEngine(t, name, 4)
	const m, n = 3000, 24
	b := randDenseStrided(rng, m, n)
	r := randUpperWellCond(rng, n)
	b0 := b.Clone()
	TrsmRightUpperNoTrans(e, b, r)
	recon := mat.NewDense(m, n)
	naiveGemm(NoTrans, NoTrans, 1, b, r, 0, recon)
	checkULPClose(t, "B·R⁻¹·R", recon, b0, math.Max(tol, 1e-11)*float64(n))
}

// testBackendFused checks the fused permute→TRSM→Gram pass against the
// same backend's unfused composition, so reduced-precision backends are
// compared at their own precision rather than against float64.
func testBackendFused(t *testing.T, name string, tol float64) {
	rng := rand.New(rand.NewSource(19))
	e := backendEngine(t, name, 4)
	const m, n = 4500, 24
	b := randDense(rng, m, n)
	r := randUpperWellCond(rng, n)
	perm := randPerm(rng, n)

	bRef := b.Clone()
	gRef := mat.NewDense(n, n)
	refPermTrsmGram(e, bRef, perm, r, gRef)

	g := mat.NewDense(n, n)
	PermTrsmGramFused(e, b, perm, r, g)
	checkULPClose(t, "B", b, bRef, 1e-11)
	checkULPClose(t, "G", g, gRef, math.Max(tol, 1e-10))
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if g.Data[i*g.Stride+j] != g.Data[j*g.Stride+i] {
				t.Fatalf("G not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// testBackendWidthDeterminism checks the per-kernel determinism
// contract: TrsmRightUpper and PermTrsmGram (the dist-lockstep CQRRPT
// path) must be bit-identical across engine widths, while the Gemm and
// Syrk accumulations may repartition by width but must stay within
// GramTol of the width-1 result.
func testBackendWidthDeterminism(t *testing.T, name string, tol float64) {
	rng := rand.New(rand.NewSource(23))
	const m, n = 8192, 24 // several slots, parallel paths engaged
	a0 := randDense(rng, m, n)
	b0 := randDense(rng, m, n)
	r := randUpperWellCond(rng, n)
	perm := randPerm(rng, n)

	type result struct{ gemm, syrk, trsm, fusedB, fusedG *mat.Dense }
	run := func(w int) result {
		e := backendEngine(t, name, w)
		var res result
		res.gemm = mat.NewDense(n, n)
		Gemm(e, Trans, NoTrans, 1, a0, b0, 0, res.gemm)
		res.syrk = mat.NewDense(n, n)
		SyrkUpperTrans(e, 1, a0, 0, res.syrk)
		res.trsm = b0.Clone()
		TrsmRightUpperNoTrans(e, res.trsm, r)
		res.fusedB = b0.Clone()
		res.fusedG = mat.NewDense(n, n)
		PermTrsmGramFused(e, res.fusedB, perm, r, res.fusedG)
		return res
	}

	accTol := math.Max(tol, 1e-13)
	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		checkULPClose(t, "Gemm", got.gemm, ref.gemm, accTol)
		checkULPClose(t, "Syrk", got.syrk, ref.syrk, accTol)
		sameBits(t, "Trsm", got.trsm, ref.trsm)
		sameBits(t, "Fused.B", got.fusedB, ref.fusedB)
		sameBits(t, "Fused.G", got.fusedG, ref.fusedG)
	}
}

// testBackendAllocFree pins the pooled-workspace invariant per backend:
// on a width-1 engine, each kernel performs zero heap allocations once
// the pools are warm.
func testBackendAllocFree(t *testing.T, name string) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(29))
	e := backendEngine(t, name, 1)
	const m, n = 2000, 16
	a := randDense(rng, m, n)
	b := randDense(rng, m, n)
	r := randUpperWellCond(rng, n)
	perm := randPerm(rng, n)
	c := mat.NewDense(n, n)
	g := mat.NewDense(n, n)

	kernels := []struct {
		label string
		run   func()
	}{
		{"Gemm", func() { Gemm(e, Trans, NoTrans, 1, a, b, 0, c) }},
		{"Syrk", func() { SyrkUpperTrans(e, 1, a, 0, c) }},
		{"Trsm", func() { TrsmRightUpperNoTrans(e, b, r) }},
		{"Fused", func() { PermTrsmGramFused(e, b, perm, r, g) }},
	}
	for _, k := range kernels {
		k.run() // warm the pools
		if allocs := testing.AllocsPerRun(5, k.run); allocs != 0 {
			t.Errorf("%s: %v allocations per sequential run, want 0", k.label, allocs)
		}
	}
}

// --- registry semantics ---

type stubBackend struct{ nativeBackend }

func TestRegisterDuplicateName(t *testing.T) {
	if err := Register("conformance-dup", stubBackend{}); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	err := Register("conformance-dup", stubBackend{})
	if err == nil {
		t.Fatal("duplicate registration succeeded, want error")
	}
	if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error %q, want mention of already registered", err)
	}
}

func TestRegisterRejectsEmptyAndNil(t *testing.T) {
	if err := Register("", stubBackend{}); err == nil {
		t.Fatal("empty-name registration succeeded, want error")
	}
	if err := Register("conformance-nil", nil); err == nil {
		t.Fatal("nil-backend registration succeeded, want error")
	}
}

func TestLookupUnknownBackendErrorText(t *testing.T) {
	_, err := Lookup("no-such-backend")
	if err == nil {
		t.Fatal("Lookup of unknown backend succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown backend "no-such-backend"`) {
		t.Fatalf("error %q does not name the unknown backend", msg)
	}
	if !strings.Contains(msg, `"native"`) && !strings.Contains(msg, "native") {
		t.Fatalf("error %q does not list registered backends", msg)
	}
}

func TestLookupEmptyIsNative(t *testing.T) {
	h, err := Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if h.Name() != "native" || h.Effective() != "native" {
		t.Fatalf("default handle = %q/%q, want native/native", h.Name(), h.Effective())
	}
}

func TestBackendsIncludesBuiltins(t *testing.T) {
	names := Backends()
	if len(names) < 2 {
		t.Fatalf("RegisteredBackends = %v, want at least native and mixed32", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"native", "mixed32", "cgoblas"} {
		if !have[want] {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
}

func TestAttachBackendDefaultIsPassthrough(t *testing.T) {
	e := parallel.NewEngine(3)
	got, err := AttachBackend(e, "")
	if err != nil {
		t.Fatalf("AttachBackend(\"\"): %v", err)
	}
	if got != e {
		t.Fatal("attaching the default backend to an unlabeled engine should return it unchanged")
	}
	if _, err := AttachBackend(e, "definitely-not-registered"); err == nil {
		t.Fatal("AttachBackend with unknown name succeeded")
	}
}
