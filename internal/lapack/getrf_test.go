package lapack

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

func TestGetrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for _, sh := range []struct{ m, n int }{
		{1, 1}, {5, 5}, {40, 40}, {100, 33}, {65, 64}, {200, 100},
	} {
		a := randMat(rng, sh.m, sh.n)
		fac := a.Clone()
		ipiv := make([]int, sh.n)
		if err := Getrf(nil, fac, ipiv); err != nil {
			t.Fatalf("%dx%d: %v", sh.m, sh.n, err)
		}
		l, u := ExtractLU(fac)
		// P·A must equal L·U.
		pa := a.Clone()
		ApplyIpiv(pa, ipiv, true)
		lu := mat.NewDense(sh.m, sh.n)
		blas.Gemm(nil, blas.NoTrans, blas.NoTrans, 1, l, u, 0, lu)
		if !mat.EqualApprox(lu, pa, 1e-11*a.MaxAbs()) {
			t.Fatalf("%dx%d: L·U != P·A", sh.m, sh.n)
		}
		// Partial pivoting bounds |L| by 1.
		if l.MaxAbs() > 1+1e-14 {
			t.Fatalf("%dx%d: |L| max %g > 1", sh.m, sh.n, l.MaxAbs())
		}
		if !u.IsUpperTriangular(0) {
			t.Fatal("U not upper triangular")
		}
	}
}

func TestGetrfSingular(t *testing.T) {
	a := mat.NewDense(4, 3) // zero matrix
	ipiv := make([]int, 3)
	err := Getrf(nil, a, ipiv)
	var serr *SingularError
	if !errors.As(err, &serr) {
		t.Fatalf("want SingularError, got %v", err)
	}
	if serr.Index != 0 || serr.Error() == "" {
		t.Fatalf("bad error detail: %+v", serr)
	}
}

func TestGetrfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Getrf(nil, mat.NewDense(2, 3), make([]int, 3)) //nolint:errcheck
}

func TestApplyIpivRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	a := randMat(rng, 8, 3)
	orig := a.Clone()
	ipiv := []int{3, 5, 2}
	ApplyIpiv(a, ipiv, true)
	if mat.EqualApprox(a, orig, 0) {
		t.Fatal("forward swaps must change the matrix")
	}
	ApplyIpiv(a, ipiv, false)
	if !mat.EqualApprox(a, orig, 0) {
		t.Fatal("reverse swaps must undo forward swaps")
	}
}

func TestGetrfGrowthOnIllConditioned(t *testing.T) {
	// The pivoted L of an ill-conditioned matrix is still well conditioned
	// (the property LU-Cholesky QR relies on).
	rng := rand.New(rand.NewSource(213))
	m, n := 120, 24
	a := randMat(rng, m, n)
	// Grade the columns heavily.
	for j := 0; j < n; j++ {
		s := math.Pow(10, -float64(j)/2)
		for i := 0; i < m; i++ {
			a.Set(i, j, a.At(i, j)*s)
		}
	}
	fac := a.Clone()
	ipiv := make([]int, n)
	if err := Getrf(nil, fac, ipiv); err != nil {
		t.Fatal(err)
	}
	l, _ := ExtractLU(fac)
	if c := Cond2(l); c > 1e4 {
		t.Fatalf("κ₂(L) = %g, want small for pivoted LU", c)
	}
}
