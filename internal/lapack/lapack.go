// Package lapack implements the higher-level dense factorizations the
// library needs, in the spirit of the LAPACK routines the paper's
// reference implementation calls:
//
//   - PotrfUpper         — DPOTRF: blocked Cholesky factorization
//   - Geqrf / Orgqr      — DGEQRF/DORGQR: blocked Householder QR, explicit Q
//   - Geqpf              — DGEQPF: Level-2 QR with column pivoting
//   - Geqp3              — DGEQP3: blocked, BLAS-3 QR with column pivoting
//   - JacobiSVDValues    — singular values via one-sided Jacobi (metrics)
//
// Everything is built on the kernels in internal/blas and runs on
// row-major mat.Dense values.
package lapack

import "fmt"

// NotPositiveDefiniteError reports that a Cholesky factorization hit a
// non-positive diagonal at the given (0-based) elimination index — the
// breakdown mode the paper's §III-A discusses for κ₂(A) ≳ u^(-1/2).
type NotPositiveDefiniteError struct {
	Index int
}

func (e *NotPositiveDefiniteError) Error() string {
	return fmt.Sprintf("lapack: matrix not positive definite at pivot %d", e.Index)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
