package lapack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

func randMat(rng *rand.Rand, m, n int) *mat.Dense {
	a := mat.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

// orthoError returns ‖QᵀQ − I‖_F.
func orthoError(q *mat.Dense) float64 {
	n := q.Cols
	g := mat.NewDense(n, n)
	blas.Gram(nil, g, q)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	return g.FrobeniusNorm()
}

// residual returns ‖A − Q·R‖_F / ‖A‖_F.
func residual(a, q, r *mat.Dense) float64 {
	diff := a.Clone()
	blas.Gemm(nil, blas.NoTrans, blas.NoTrans, -1, q, r, 1, diff)
	return diff.FrobeniusNorm() / a.FrobeniusNorm()
}

func TestLarfgAnnihilates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		alpha := rng.NormFloat64()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64{alpha}, append([]float64(nil), x...)...)
		beta, tau := Larfg(alpha, x)
		// Apply H = I − τ·v·vᵀ to the original vector; expect [beta; 0].
		v := append([]float64{1}, x...)
		dot := 0.0
		for i := range v {
			dot += v[i] * orig[i]
		}
		for i := range v {
			orig[i] -= tau * v[i] * dot
		}
		if math.Abs(orig[0]-beta) > 1e-13*(1+math.Abs(beta)) {
			t.Fatalf("H·x head = %v, want beta = %v", orig[0], beta)
		}
		for i := 1; i < len(orig); i++ {
			if math.Abs(orig[i]) > 1e-13 {
				t.Fatalf("H·x tail not annihilated: %v", orig[i])
			}
		}
		// Norm preservation: |beta| == ‖[alpha; x_orig]‖.
		if tau < 0 || tau > 2 {
			t.Fatalf("tau = %v outside [0,2]", tau)
		}
	}
}

func TestLarfgZeroTail(t *testing.T) {
	beta, tau := Larfg(3.5, nil)
	if beta != 3.5 || tau != 0 {
		t.Fatalf("Larfg(3.5, nil) = (%v, %v), want (3.5, 0)", beta, tau)
	}
	x := []float64{0, 0}
	beta, tau = Larfg(-2, x)
	if beta != -2 || tau != 0 {
		t.Fatalf("zero tail: beta=%v tau=%v", beta, tau)
	}
}

func TestLarfgTinyValues(t *testing.T) {
	x := []float64{1e-300}
	beta, tau := Larfg(1e-300, x)
	want := math.Sqrt2 * 1e-300
	if math.Abs(math.Abs(beta)-want)/want > 1e-12 {
		t.Fatalf("tiny Larfg beta = %v, want ±%v", beta, want)
	}
	if tau == 0 || math.IsNaN(tau) {
		t.Fatalf("tiny Larfg tau = %v", tau)
	}
}

func TestLapy2(t *testing.T) {
	if got := lapy2(3, 4); math.Abs(got-5) > 1e-15 {
		t.Fatalf("lapy2(3,4) = %v", got)
	}
	if got := lapy2(0, -7); got != 7 {
		t.Fatalf("lapy2(0,-7) = %v", got)
	}
	if got := lapy2(1e300, 1e300); math.IsInf(got, 0) {
		t.Fatal("lapy2 overflowed")
	}
}

func TestGeqrfOrgqr(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, n int }{
		{1, 1}, {5, 3}, {20, 20}, {100, 7}, {65, 33}, {200, 64}, {50, 50},
	}
	for _, sh := range shapes {
		a := randMat(rng, sh.m, sh.n)
		fac := a.Clone()
		tau := make([]float64, min(sh.m, sh.n))
		Geqrf(nil, fac, tau)
		r := ExtractR(fac)
		if !r.IsUpperTriangular(0) {
			t.Fatalf("%dx%d: R not upper triangular", sh.m, sh.n)
		}
		q := fac // Orgqr overwrites in place
		Orgqr(nil, q, tau)
		if e := orthoError(q); e > 1e-13*math.Sqrt(float64(sh.n)) {
			t.Fatalf("%dx%d: ‖QᵀQ−I‖ = %g", sh.m, sh.n, e)
		}
		if res := residual(a, q, r); res > 1e-13 {
			t.Fatalf("%dx%d: residual %g", sh.m, sh.n, res)
		}
	}
}

func TestGeqrfWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, n := 6, 10
	a := randMat(rng, m, n)
	fac := a.Clone()
	tau := make([]float64, m)
	Geqrf(nil, fac, tau)
	// R is the upper trapezoid; Q from the first m columns.
	r := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, fac.At(i, j))
		}
	}
	qfac := fac.Slice(0, m, 0, m).Clone()
	Orgqr(nil, qfac, tau)
	if e := orthoError(qfac); e > 1e-13 {
		t.Fatalf("wide: ‖QᵀQ−I‖ = %g", e)
	}
	if res := residual(a, qfac, r); res > 1e-13 {
		t.Fatalf("wide: residual %g", res)
	}
}

func TestGeqrfDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randMat(rng, 40, 10)
	f1, f2 := a.Clone(), a.Clone()
	t1, t2 := make([]float64, 10), make([]float64, 10)
	Geqrf(nil, f1, t1)
	Geqrf(nil, f2, t2)
	if !mat.EqualApprox(f1, f2, 0) {
		t.Fatal("Geqrf must be deterministic")
	}
}

func TestGeqrfPositiveDiagonalSignConvention(t *testing.T) {
	// LAPACK's Householder convention gives beta with sign opposite to the
	// leading element; just verify R's diagonal is nonzero for a full-rank
	// input.
	rng := rand.New(rand.NewSource(45))
	a := randMat(rng, 30, 8)
	tau := make([]float64, 8)
	Geqrf(nil, a, tau)
	for i := 0; i < 8; i++ {
		if a.At(i, i) == 0 {
			t.Fatalf("zero diagonal at %d for full-rank input", i)
		}
	}
}
