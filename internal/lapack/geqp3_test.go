package lapack

import (
	"math"
	"math/rand"
	"testing"

	"repro/mat"
)

// checkQRCP validates a pivoted factorization: A·P == Q·R, Q orthonormal,
// R upper triangular with non-increasing |diag|.
func checkQRCP(t *testing.T, name string, a, fac *mat.Dense, tau []float64, jpvt mat.Perm, diagTol float64) {
	t.Helper()
	m, n := a.Rows, a.Cols
	if !jpvt.IsValid() {
		t.Fatalf("%s: invalid permutation %v", name, jpvt)
	}
	r := ExtractR(fac)
	q := fac.Clone()
	Orgqr(nil, q, tau)
	if e := orthoError(q); e > 1e-12*math.Sqrt(float64(n)) {
		t.Fatalf("%s: ‖QᵀQ−I‖ = %g", name, e)
	}
	ap := mat.NewDense(m, n)
	mat.PermuteCols(ap, a, jpvt)
	if res := residual(ap, q, r); res > 1e-12 {
		t.Fatalf("%s: ‖AP−QR‖/‖A‖ = %g", name, res)
	}
	// Pivoting property: |R(j,j)| is (weakly) decreasing, modulo roundoff.
	for j := 1; j < n; j++ {
		prev, cur := math.Abs(r.At(j-1, j-1)), math.Abs(r.At(j, j))
		if cur > prev*(1+diagTol) {
			t.Fatalf("%s: |R(%d,%d)|=%g > |R(%d,%d)|=%g", name, j, j, cur, j-1, j-1, prev)
		}
	}
}

func TestGeqpfRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	shapes := []struct{ m, n int }{{1, 1}, {10, 4}, {50, 20}, {120, 50}, {30, 30}}
	for _, sh := range shapes {
		a := randMat(rng, sh.m, sh.n)
		fac := a.Clone()
		tau := make([]float64, min(sh.m, sh.n))
		jpvt := make(mat.Perm, sh.n)
		Geqpf(nil, fac, tau, jpvt)
		checkQRCP(t, "Geqpf", a, fac, tau, jpvt, 1e-10)
	}
}

func TestGeqp3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	shapes := []struct{ m, n int }{
		{1, 1}, {10, 4}, {50, 20}, {120, 50}, {30, 30}, {300, 100}, {64, 64}, {65, 40},
	}
	for _, sh := range shapes {
		a := randMat(rng, sh.m, sh.n)
		fac := a.Clone()
		tau := make([]float64, min(sh.m, sh.n))
		jpvt := make(mat.Perm, sh.n)
		Geqp3(nil, fac, tau, jpvt)
		checkQRCP(t, "Geqp3", a, fac, tau, jpvt, 1e-10)
	}
}

func TestGeqp3MatchesGeqpfPivots(t *testing.T) {
	// On generic random matrices the greedy pivot sequence is unambiguous,
	// so the blocked and unblocked algorithms must choose identical pivots.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		m := 40 + rng.Intn(100)
		n := 5 + rng.Intn(60)
		if n > m {
			n = m
		}
		a := randMat(rng, m, n)
		f1, f2 := a.Clone(), a.Clone()
		t1, t2 := make([]float64, n), make([]float64, n)
		p1, p2 := make(mat.Perm, n), make(mat.Perm, n)
		Geqpf(nil, f1, t1, p1)
		Geqp3(nil, f2, t2, p2)
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("trial %d (m=%d n=%d): pivot %d differs: %v vs %v",
					trial, m, n, j, p1, p2)
			}
		}
		// R factors must agree up to sign (signs are fixed by the pivots
		// here, so exact comparison with a loose tolerance is fine).
		r1, r2 := ExtractR(f1), ExtractR(f2)
		if !mat.EqualApprox(r1, r2, 1e-9*r1.MaxAbs()) {
			t.Fatalf("trial %d: R factors differ between Geqpf and Geqp3", trial)
		}
	}
}

func TestGeqp3RankDeficient(t *testing.T) {
	// Columns 3..5 are linear combinations of columns 0..2: numerical rank 3.
	rng := rand.New(rand.NewSource(54))
	m, n, r := 60, 6, 3
	base := randMat(rng, m, r)
	a := mat.NewDense(m, n)
	for j := 0; j < n; j++ {
		c := make([]float64, r)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < r; l++ {
				s += base.At(i, l) * c[l]
			}
			a.Set(i, j, s)
		}
	}
	fac := a.Clone()
	tau := make([]float64, n)
	jpvt := make(mat.Perm, n)
	Geqp3(nil, fac, tau, jpvt)
	rr := ExtractR(fac)
	lead := math.Abs(rr.At(0, 0))
	for j := 0; j < r; j++ {
		if math.Abs(rr.At(j, j)) < 1e-10*lead {
			t.Fatalf("leading diagonal %d too small: %g", j, rr.At(j, j))
		}
	}
	for j := r; j < n; j++ {
		if math.Abs(rr.At(j, j)) > 1e-10*lead {
			t.Fatalf("trailing diagonal %d too large for rank-%d matrix: %g", j, r, rr.At(j, j))
		}
	}
}

func TestGeqp3GradedColumns(t *testing.T) {
	// Strongly graded columns: pivot order must be by decreasing norm.
	m, n := 40, 8
	rng := rand.New(rand.NewSource(55))
	a := mat.NewDense(m, n)
	for j := 0; j < n; j++ {
		scale := math.Pow(10, float64(j-4)) // increasing norms with j
		for i := 0; i < m; i++ {
			a.Set(i, j, scale*rng.NormFloat64())
		}
	}
	fac := a.Clone()
	tau := make([]float64, n)
	jpvt := make(mat.Perm, n)
	Geqp3(nil, fac, tau, jpvt)
	if jpvt[0] != n-1 {
		t.Fatalf("first pivot should be the largest column %d, got %d", n-1, jpvt[0])
	}
	checkQRCP(t, "graded", a, fac, tau, jpvt, 1e-8)
}

func TestGeqpfDuplicateColumns(t *testing.T) {
	// Identical columns exercise the norm-downdate cancellation path.
	rng := rand.New(rand.NewSource(56))
	m, n := 50, 6
	a := randMat(rng, m, n)
	for i := 0; i < m; i++ {
		a.Set(i, 3, a.At(i, 1))
		a.Set(i, 5, a.At(i, 1))
	}
	fac := a.Clone()
	tau := make([]float64, n)
	jpvt := make(mat.Perm, n)
	Geqpf(nil, fac, tau, jpvt)
	checkQRCP(t, "dup", a, fac, tau, jpvt, 1e-8)
	r := ExtractR(fac)
	zeros := 0
	for j := 0; j < n; j++ {
		if math.Abs(r.At(j, j)) < 1e-12*math.Abs(r.At(0, 0)) {
			zeros++
		}
	}
	if zeros != 2 {
		t.Fatalf("expected exactly 2 negligible diagonals for 2 duplicate columns, got %d", zeros)
	}
}

func TestGeqp3ZeroMatrix(t *testing.T) {
	a := mat.NewDense(10, 4)
	tau := make([]float64, 4)
	jpvt := make(mat.Perm, 4)
	Geqp3(nil, a, tau, jpvt) // must not panic or produce NaN
	for _, v := range a.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in factorization of zero matrix")
		}
	}
	if !jpvt.IsValid() {
		t.Fatalf("invalid pivot for zero matrix: %v", jpvt)
	}
}
