package lapack

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// potrfBlock is the panel width of the blocked Cholesky; the trailing
// update is then a Level-3 Syrk.
const potrfBlock = 64

// PotrfUpper computes the Cholesky factorization A = RᵀR of a symmetric
// positive definite matrix, overwriting the upper triangle of a with R.
// The strict lower triangle is not referenced and not modified (LAPACK
// DPOTRF('U') semantics). On breakdown it returns
// *NotPositiveDefiniteError with the failing pivot index; the contents of
// a are then unspecified. The engine e bounds the parallel width of the
// trailing Level-3 updates (nil selects the default engine).
func PotrfUpper(e *parallel.Engine, a *mat.Dense) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("lapack: PotrfUpper on %d×%d", a.Rows, a.Cols))
	}
	n := a.Rows
	sp := trace.Region(trace.KernelPotrf)
	defer sp.End()
	trace.AddFlops(trace.KernelPotrf, int64(n)*int64(n)*int64(n)/3)
	for k := 0; k < n; k += potrfBlock {
		kb := min(potrfBlock, n-k)
		akk := a.Slice(k, k+kb, k, k+kb)
		if err := potrfUnblocked(akk); err != nil {
			perr := err.(*NotPositiveDefiniteError)
			perr.Index += k
			return perr
		}
		if k+kb < n {
			a12 := a.Slice(k, k+kb, k+kb, n)
			blas.TrsmLeftUpperTrans(akk, a12)
			a22 := a.Slice(k+kb, n, k+kb, n)
			blas.SyrkUpperTrans(e, -1, a12, 1, a22)
		}
	}
	return nil
}

func potrfUnblocked(a *mat.Dense) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.Data[j*a.Stride+j]
		for k := 0; k < j; k++ {
			v := a.Data[k*a.Stride+j]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return &NotPositiveDefiniteError{Index: j}
		}
		rjj := math.Sqrt(d)
		a.Data[j*a.Stride+j] = rjj
		inv := 1 / rjj
		for i := j + 1; i < n; i++ {
			s := a.Data[j*a.Stride+i]
			for k := 0; k < j; k++ {
				s -= a.Data[k*a.Stride+j] * a.Data[k*a.Stride+i]
			}
			a.Data[j*a.Stride+i] = s * inv
		}
	}
	return nil
}

// ZeroLower clears the strict lower triangle of a square matrix, turning a
// Potrf result into an explicit upper triangular R.
func ZeroLower(a *mat.Dense) {
	for i := 1; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+min(i, a.Cols)]
		for j := range row {
			row[j] = 0
		}
	}
}
