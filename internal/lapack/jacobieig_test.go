package lapack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

func TestJacobiEigSymDiagonal(t *testing.T) {
	a := mat.NewDense(4, 4)
	for i, v := range []float64{3, -7, 1, 5} {
		a.Set(i, i, v)
	}
	vals, vecs := JacobiEigSym(a)
	want := []float64{5, 3, 1, -7}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-13 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are signed unit vectors.
	for j := 0; j < 4; j++ {
		nz := 0
		for i := 0; i < 4; i++ {
			if math.Abs(vecs.At(i, j)) > 1e-12 {
				nz++
			}
		}
		if nz != 1 {
			t.Fatalf("eigvec %d not axis-aligned", j)
		}
	}
}

func TestJacobiEigSymReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	for _, n := range []int{1, 2, 5, 12, 30} {
		// Random symmetric matrix.
		a := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := JacobiEigSym(a)
		// Check V·diag(λ)·Vᵀ == A.
		vd := vecs.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, vd.At(i, j)*vals[j])
			}
		}
		rec := mat.NewDense(n, n)
		blas.Gemm(nil, blas.NoTrans, blas.Trans, 1, vd, vecs, 0, rec)
		if !mat.EqualApprox(rec, a, 1e-11*(1+a.MaxAbs())) {
			t.Fatalf("n=%d: V·Λ·Vᵀ != A", n)
		}
		// V orthogonal.
		g := mat.NewDense(n, n)
		blas.Gram(nil, g, vecs)
		if !mat.EqualApprox(g, mat.Identity(n), 1e-12) {
			t.Fatalf("n=%d: V not orthogonal", n)
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-13 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
	}
}

func TestJacobiEigSymZero(t *testing.T) {
	vals, vecs := JacobiEigSym(mat.NewDense(3, 3))
	for _, v := range vals {
		if v != 0 {
			t.Fatal("zero matrix must have zero eigenvalues")
		}
	}
	if !mat.EqualApprox(vecs, mat.Identity(3), 0) {
		t.Fatal("zero matrix eigenvectors should be identity")
	}
}

func TestJacobiEigSymMatchesSVDOnPSD(t *testing.T) {
	// For B = AᵀA, eigenvalues are squared singular values of A.
	rng := rand.New(rand.NewSource(262))
	a := randMat(rng, 40, 8)
	w := mat.NewDense(8, 8)
	blas.Gram(nil, w, a)
	vals, _ := JacobiEigSym(w)
	sv := JacobiSVDValues(a)
	for i := range sv {
		if math.Abs(vals[i]-sv[i]*sv[i]) > 1e-10*(1+vals[0]) {
			t.Fatalf("λ_%d = %g, σ² = %g", i, vals[i], sv[i]*sv[i])
		}
	}
}

func TestJacobiEigSymPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JacobiEigSym(mat.NewDense(2, 3))
}
