package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/parallel"
	"repro/mat"
)

// Larfg generates an elementary Householder reflector H = I − τ·v·vᵀ with
// v[0] = 1 such that H·[alpha; x] = [beta; 0]. On return x holds v[1:],
// and beta, tau are returned. If x is zero and alpha needs no change,
// tau = 0 and H = I. Includes the LAPACK rescaling loop so subnormal
// columns still produce accurate reflectors.
func Larfg(alpha float64, x []float64) (beta, tau float64) {
	xnorm := blas.Nrm2(x)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -math.Copysign(lapy2(alpha, xnorm), alpha)
	const safmin = 2.0041683600089728e-292 // dlamch('S')/dlamch('E')
	cnt := 0
	for math.Abs(beta) < safmin && cnt < 20 {
		blas.Scal(1/safmin, x)
		beta /= safmin
		alpha /= safmin
		cnt++
		xnorm = blas.Nrm2(x)
		beta = -math.Copysign(lapy2(alpha, xnorm), alpha)
	}
	tau = (beta - alpha) / beta
	blas.Scal(1/(alpha-beta), x)
	for ; cnt > 0; cnt-- {
		beta *= safmin
	}
	return beta, tau
}

// lapy2 returns sqrt(x²+y²) without unnecessary overflow.
func lapy2(x, y float64) float64 {
	ax, ay := math.Abs(x), math.Abs(y)
	w, z := ax, ay
	if ay > ax {
		w, z = ay, ax
	}
	if z == 0 {
		return w
	}
	r := z / w
	return w * math.Sqrt(1+r*r)
}

// gatherCol copies column j of a, rows [i0, a.Rows), into dst.
func gatherCol(a *mat.Dense, i0, j int, dst []float64) {
	for i := i0; i < a.Rows; i++ {
		dst[i-i0] = a.Data[i*a.Stride+j]
	}
}

// scatterCol writes src into column j of a, rows [i0, a.Rows).
func scatterCol(a *mat.Dense, i0, j int, src []float64) {
	for i := i0; i < a.Rows; i++ {
		a.Data[i*a.Stride+j] = src[i-i0]
	}
}

// applyReflectorLeft applies H = I − τ·v·vᵀ to c from the left:
// c := c − τ·v·(vᵀc). v has length c.Rows (v[0] is explicit). work must
// have length ≥ c.Cols.
func applyReflectorLeft(e *parallel.Engine, tau float64, v []float64, c *mat.Dense, work []float64) {
	if tau == 0 || c.Cols == 0 || c.Rows == 0 {
		return
	}
	w := work[:c.Cols]
	blas.Gemv(e, blas.Trans, 1, c, v, 0, w)
	blas.Ger(e, -tau, v, w, c)
}

// larft forms the upper triangular block factor T of the compact WY
// representation: H₁…H_k = I − V·T·Vᵀ, where v is m×k with explicit unit
// diagonal and zeros above it. T must be k×k.
func larft(v *mat.Dense, tau []float64, t *mat.Dense) {
	k := v.Cols
	scratch := mat.GetFloats(k, false)
	defer mat.PutFloats(scratch)
	for i := 0; i < k; i++ {
		t.Set(i, i, tau[i])
		if i == 0 || tau[i] == 0 {
			for j := 0; j < i; j++ {
				t.Set(j, i, 0)
			}
			if tau[i] == 0 && i > 0 {
				continue
			}
			continue
		}
		// w = V(:, 0:i)ᵀ · V(:, i), then T(0:i, i) = −τ_i · T(0:i,0:i) · w.
		w := scratch[:i]
		for j := range w {
			w[j] = 0
		}
		for r := 0; r < v.Rows; r++ {
			vi := v.Data[r*v.Stride+i]
			if vi == 0 {
				continue
			}
			row := v.Data[r*v.Stride : r*v.Stride+i]
			for j, x := range row {
				w[j] += x * vi
			}
		}
		// Triangular multiply T(0:i,0:i)·w into column i of T.
		for j := 0; j < i; j++ {
			s := 0.0
			for l := j; l < i; l++ {
				s += t.At(j, l) * w[l]
			}
			t.Set(j, i, -tau[i]*s)
		}
	}
}

// trmmLeftUpperTransSmall computes B := Tᵀ·B in place for small upper
// triangular T. Rows are processed in decreasing order so each output row
// only reads not-yet-overwritten rows.
func trmmLeftUpperTransSmall(t, b *mat.Dense) {
	n := b.Rows
	for i := n - 1; i >= 0; i-- {
		bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		tii := t.At(i, i)
		for j := range bi {
			bi[j] *= tii
		}
		for k := 0; k < i; k++ {
			c := t.At(k, i) // Tᵀ[i,k]
			if c == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j := range bi {
				bi[j] += c * bk[j]
			}
		}
	}
}

// larfbLeft applies the block reflector to c from the left:
// trans=true applies (I − V·T·Vᵀ)ᵀ (the forward QR update);
// trans=false applies I − V·T·Vᵀ (used when forming Q).
// v is m×k with explicit unit-diagonal lower-trapezoidal structure.
func larfbLeft(e *parallel.Engine, trans bool, v, t, c *mat.Dense) {
	if c.Cols == 0 || v.Cols == 0 {
		return
	}
	k := v.Cols
	w := mat.GetWorkspace(k, c.Cols, false)
	defer mat.PutWorkspace(w)
	blas.Gemm(e, blas.Trans, blas.NoTrans, 1, v, c, 0, w) // W = Vᵀ·C
	if trans {
		trmmLeftUpperTransSmall(t, w) // W = Tᵀ·W
	} else {
		blas.TrmmLeftUpperNoTrans(t, w) // W = T·W
	}
	blas.Gemm(e, blas.NoTrans, blas.NoTrans, -1, v, w, 1, c) // C −= V·W
}

// extractV materializes the unit lower-trapezoidal reflector panel stored
// in a(i0:m, j0:j0+k) into a pooled (m−i0)×k matrix with explicit ones on
// the diagonal and zeros above. The caller owns the result and should
// release it with mat.PutWorkspace when done.
func extractV(a *mat.Dense, i0, j0, k int) *mat.Dense {
	m := a.Rows - i0
	v := mat.GetWorkspace(m, k, true)
	for j := 0; j < k; j++ {
		v.Set(j, j, 1)
		for i := j + 1; i < m; i++ {
			v.Set(i, j, a.At(i0+i, j0+j))
		}
	}
	return v
}
