package lapack

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// qrBlock is the panel width of the blocked Householder QR.
const qrBlock = 32

// Geqrf computes the QR factorization A = Q·R by blocked Householder
// transformations (DGEQRF). On return the upper triangle of a holds R and
// the strict lower triangle holds the reflector vectors; tau (length
// min(m,n)) holds the reflector scales. Use Orgqr to materialize Q or
// ExtractR to copy out R. The engine e bounds the parallel width (nil
// selects the default engine).
func Geqrf(e *parallel.Engine, a *mat.Dense, tau []float64) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) < k {
		panic(fmt.Sprintf("lapack: Geqrf tau length %d < %d", len(tau), k))
	}
	sp := trace.Region(trace.KernelGeqrf)
	defer sp.End()
	// 2mnk − (m+n)k² + (2/3)k³ flops of the Householder QR (k = min(m,n)).
	trace.AddFlops(trace.KernelGeqrf,
		2*int64(m)*int64(n)*int64(k)-int64(m+n)*int64(k)*int64(k)+2*int64(k)*int64(k)*int64(k)/3)
	colBuf := mat.GetFloats(m, false)
	work := mat.GetFloats(n, false)
	defer mat.PutFloats(colBuf)
	defer mat.PutFloats(work)
	for j := 0; j < k; j += qrBlock {
		jb := min(qrBlock, k-j)
		// Factor the panel a(j:m, j:j+jb) with Level-2 updates.
		for jj := j; jj < j+jb; jj++ {
			v := colBuf[:m-jj]
			gatherCol(a, jj, jj, v)
			beta, t := Larfg(v[0], v[1:])
			tau[jj] = t
			v[0] = 1
			// Apply H to the remaining panel columns.
			if jj+1 < j+jb {
				panel := a.Slice(jj, m, jj+1, j+jb)
				applyReflectorLeft(e, t, v, panel, work)
			}
			// Store beta and the reflector back into the column.
			a.Set(jj, jj, beta)
			scatterCol(a, jj+1, jj, v[1:])
		}
		// Blocked update of the trailing matrix: C := (I − V·T·Vᵀ)ᵀ·C.
		if j+jb < n {
			v := extractV(a, j, j, jb)
			t := mat.GetWorkspace(jb, jb, true)
			larft(v, tau[j:j+jb], t)
			trailing := a.Slice(j, m, j+jb, n)
			larfbLeft(e, true, v, t, trailing)
			mat.PutWorkspace(t)
			mat.PutWorkspace(v)
		}
	}
}

// Orgqr overwrites a (holding a Geqrf result in its first k = len(tau)
// columns) with the explicit m×n orthonormal factor Q = H₁…H_k·[I; 0]
// (DORGQR with the thin-Q convention n = a.Cols). The engine e bounds the
// parallel width (nil selects the default engine).
func Orgqr(e *parallel.Engine, a *mat.Dense, tau []float64) {
	m, n := a.Rows, a.Cols
	k := len(tau)
	if k > n {
		panic(fmt.Sprintf("lapack: Orgqr %d reflectors for %d columns", k, n))
	}
	// Save the reflector panels before overwriting a with Q.
	type block struct {
		v *mat.Dense
		t *mat.Dense
		j int
	}
	var blocks []block
	for j := 0; j < k; j += qrBlock {
		jb := min(qrBlock, k-j)
		v := extractV(a, j, j, jb)
		t := mat.GetWorkspace(jb, jb, true)
		larft(v, tau[j:j+jb], t)
		blocks = append(blocks, block{v: v, t: t, j: j})
	}
	// Initialize Q := [I; 0].
	a.Zero()
	for i := 0; i < min(m, n); i++ {
		a.Set(i, i, 1)
	}
	// Apply the block reflectors in reverse: Q = (I−V₁T₁V₁ᵀ)…(I−V_bT_bV_bᵀ)·I.
	for bi := len(blocks) - 1; bi >= 0; bi-- {
		b := blocks[bi]
		sub := a.Slice(b.j, m, b.j, n)
		larfbLeft(e, false, b.v, b.t, sub)
		mat.PutWorkspace(b.t)
		mat.PutWorkspace(b.v)
	}
}

// ExtractR copies the upper triangular factor out of a Geqrf/Geqpf/Geqp3
// result into a fresh n×n matrix (for m ≥ n).
func ExtractR(a *mat.Dense) *mat.Dense {
	n := a.Cols
	if a.Rows < n {
		panic(fmt.Sprintf("lapack: ExtractR needs m ≥ n, got %d×%d", a.Rows, n))
	}
	r := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(r.Data[i*r.Stride+i:i*r.Stride+n], a.Data[i*a.Stride+i:i*a.Stride+n])
	}
	return r
}
