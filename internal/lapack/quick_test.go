package lapack

// Property-based tests on the factorization contracts for arbitrary
// shapes and conditioning.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/mat"
)

func TestQuickGeqrfContract(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%24
		m := n + int(mRaw)%80
		a := randMat(rng, m, n)
		fac := a.Clone()
		tau := make([]float64, n)
		Geqrf(nil, fac, tau)
		r := ExtractR(fac)
		if !r.IsUpperTriangular(0) {
			return false
		}
		Orgqr(nil, fac, tau)
		if orthoError(fac) > 1e-12*math.Sqrt(float64(n)) {
			return false
		}
		return residual(a, fac, r) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickPotrfRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		b := randMat(rng, n+5, n)
		w := mat.NewDense(n, n)
		blas.Gram(nil, w, b)
		for i := 0; i < n; i++ {
			w.Set(i, i, w.At(i, i)+1)
		}
		r := w.Clone()
		if err := PotrfUpper(nil, r); err != nil {
			return false
		}
		ZeroLower(r)
		chk := mat.NewDense(n, n)
		blas.Gemm(nil, blas.Trans, blas.NoTrans, 1, r, r, 0, chk)
		return mat.EqualApprox(chk, w, 1e-10*(1+w.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickGeqp3DiagonalDominance(t *testing.T) {
	// For any input, |R(j,j)| ≥ ‖R(j:k, j:k) column‖ ordering property:
	// the pivoted diagonal dominates every later column tail:
	// R(j,j)² ≥ Σ_{i=j..l} R(i,l)² for all l > j.
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%20
		m := n + int(mRaw)%60
		a := randMat(rng, m, n)
		fac := a.Clone()
		tau := make([]float64, n)
		jpvt := make(mat.Perm, n)
		Geqp3(nil, fac, tau, jpvt)
		r := ExtractR(fac)
		for j := 0; j < n; j++ {
			d2 := r.At(j, j) * r.At(j, j)
			for l := j + 1; l < n; l++ {
				tail := 0.0
				for i := j; i <= l; i++ {
					tail += r.At(i, l) * r.At(i, l)
				}
				if d2 < tail*(1-1e-8) {
					t.Logf("seed=%d m=%d n=%d: pivot property violated at (%d,%d)", seed, m, n, j, l)
					return false
				}
			}
		}
		return jpvt.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickGetrfRoundTrip(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%30
		m := n + int(mRaw)%50
		a := randMat(rng, m, n)
		fac := a.Clone()
		ipiv := make([]int, n)
		if err := Getrf(nil, fac, ipiv); err != nil {
			return false
		}
		l, u := ExtractLU(fac)
		pa := a.Clone()
		ApplyIpiv(pa, ipiv, true)
		lu := mat.NewDense(m, n)
		blas.Gemm(nil, blas.NoTrans, blas.NoTrans, 1, l, u, 0, lu)
		return mat.EqualApprox(lu, pa, 1e-10*(1+a.MaxAbs())) && l.MaxAbs() <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickJacobiSVDInvariants(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%12
		m := n + int(mRaw)%40
		a := randMat(rng, m, n)
		sv := JacobiSVDValues(a)
		if len(sv) != n {
			return false
		}
		// Descending, non-negative.
		for i := range sv {
			if sv[i] < 0 {
				return false
			}
			if i > 0 && sv[i] > sv[i-1]+1e-12 {
				return false
			}
		}
		// Σσ² == ‖A‖_F².
		sum := 0.0
		for _, s := range sv {
			sum += s * s
		}
		nf := a.FrobeniusNorm()
		return math.Abs(sum-nf*nf) <= 1e-9*(1+nf*nf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
