package lapack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

func TestJacobiSVDDiagonal(t *testing.T) {
	a := mat.NewDense(4, 4)
	vals := []float64{3, 1, 4, 2}
	for i, v := range vals {
		a.Set(i, i, v)
	}
	sv := JacobiSVDValues(a)
	want := []float64{4, 3, 2, 1}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-13 {
			t.Fatalf("sv = %v, want %v", sv, want)
		}
	}
}

func TestJacobiSVDKnownSingularValues(t *testing.T) {
	// Build A = Q1·diag(σ)·Q2ᵀ from Householder-orthogonal factors and
	// verify Jacobi recovers σ.
	rng := rand.New(rand.NewSource(61))
	m, n := 30, 8
	sigma := []float64{10, 5, 2, 1, 0.5, 1e-3, 1e-6, 1e-9}
	u := randomOrtho(rng, m, n)
	v := randomOrtho(rng, n, n)
	a := mat.NewDense(m, n)
	// a = u·diag·vᵀ
	ud := u.Clone()
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			ud.Set(i, j, ud.At(i, j)*sigma[j])
		}
	}
	blas.Gemm(nil, blas.NoTrans, blas.Trans, 1, ud, v, 0, a)
	sv := JacobiSVDValues(a)
	for i, want := range sigma {
		if math.Abs(sv[i]-want) > 1e-12*sigma[0] && math.Abs(sv[i]-want)/want > 1e-8 {
			t.Fatalf("sv[%d] = %g, want %g", i, sv[i], want)
		}
	}
}

func TestJacobiSVDWide(t *testing.T) {
	// Wide input goes through the transpose path.
	a := mat.NewDenseData(2, 3, []float64{1, 0, 0, 0, 2, 0})
	sv := JacobiSVDValues(a)
	if len(sv) != 2 || math.Abs(sv[0]-2) > 1e-14 || math.Abs(sv[1]-1) > 1e-14 {
		t.Fatalf("wide sv = %v, want [2 1]", sv)
	}
}

func TestCond2(t *testing.T) {
	a := mat.NewDense(3, 3)
	a.Set(0, 0, 8)
	a.Set(1, 1, 4)
	a.Set(2, 2, 2)
	if c := Cond2(a); math.Abs(c-4) > 1e-12 {
		t.Fatalf("Cond2 = %v, want 4", c)
	}
	sing := mat.NewDense(2, 2)
	sing.Set(0, 0, 1)
	if c := Cond2(sing); !math.IsInf(c, 1) {
		t.Fatalf("Cond2 of singular = %v, want +Inf", c)
	}
}

func TestNorm2(t *testing.T) {
	a := mat.NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, -7)
	if got := Norm2(a); math.Abs(got-7) > 1e-13 {
		t.Fatalf("Norm2 = %v, want 7", got)
	}
	if got := Norm2(mat.NewDense(0, 0)); got != 0 {
		t.Fatalf("Norm2 empty = %v", got)
	}
}

func TestJacobiOrthogonalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randMat(rng, 20, 6)
	q := randomOrtho(rng, 20, 20)
	qa := mat.NewDense(20, 6)
	blas.Gemm(nil, blas.NoTrans, blas.NoTrans, 1, q, a, 0, qa)
	s1 := JacobiSVDValues(a)
	s2 := JacobiSVDValues(qa)
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-10*(1+s1[0]) {
			t.Fatalf("singular values not invariant under Q: %v vs %v", s1, s2)
		}
	}
}

// randomOrtho returns an m×n matrix with orthonormal columns via Geqrf+Orgqr.
func randomOrtho(rng *rand.Rand, m, n int) *mat.Dense {
	g := randMat(rng, m, n)
	tau := make([]float64, n)
	Geqrf(nil, g, tau)
	Orgqr(nil, g, tau)
	return g
}
