package lapack

import (
	"math"
	"sort"

	"repro/mat"
)

// JacobiSVDValues returns the singular values of a (m×n, m ≥ n) in
// descending order, computed by one-sided Jacobi rotations on a copy.
// One-sided Jacobi is slow but extremely accurate even for tiny singular
// values, which is exactly what the accuracy experiments (κ₂(R₁₁),
// ‖R₂₂‖₂ in Fig. 2) need.
func JacobiSVDValues(a *mat.Dense) []float64 {
	if a.Rows < a.Cols {
		// Work on the transpose; singular values are shared.
		return JacobiSVDValues(a.T())
	}
	w := a.Clone()
	m, n := w.Rows, w.Cols
	const (
		maxSweeps = 60
		tol       = 1e-15
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					vp := w.Data[i*w.Stride+p]
					vq := w.Data[i*w.Stride+q]
					app += vp * vp
					aqq += vq * vq
					apq += vp * vq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				rotated = true
				// Two-sided rotation angle that annihilates apq.
				zeta := (aqq - app) / (2 * apq)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					vp := w.Data[i*w.Stride+p]
					vq := w.Data[i*w.Stride+q]
					w.Data[i*w.Stride+p] = c*vp - s*vq
					w.Data[i*w.Stride+q] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		sv[j] = w.ColNorm2(j)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// Cond2 returns the 2-norm condition number σ_max/σ_min of a. It returns
// +Inf when the smallest singular value is zero.
func Cond2(a *mat.Dense) float64 {
	sv := JacobiSVDValues(a)
	if len(sv) == 0 {
		return 1
	}
	smin := sv[len(sv)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return sv[0] / smin
}

// Norm2 returns the spectral norm σ_max of a.
func Norm2(a *mat.Dense) float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	sv := JacobiSVDValues(a)
	return sv[0]
}
