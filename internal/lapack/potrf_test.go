package lapack

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

// randSPD builds a well-conditioned symmetric positive definite matrix
// A = BᵀB + n·I.
func randSPD(rng *rand.Rand, n int) *mat.Dense {
	b := mat.NewDense(n+3, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	w := mat.NewDense(n, n)
	blas.Gram(nil, w, b)
	for i := 0; i < n; i++ {
		w.Set(i, i, w.At(i, i)+float64(n))
	}
	return w
}

func TestPotrfUpperReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 7, 63, 64, 65, 130, 200} {
		w := randSPD(rng, n)
		r := w.Clone()
		if err := PotrfUpper(nil, r); err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		ZeroLower(r)
		// Check RᵀR == W.
		chk := mat.NewDense(n, n)
		blas.Gemm(nil, blas.Trans, blas.NoTrans, 1, r, r, 0, chk)
		scale := w.MaxAbs()
		if !mat.EqualApprox(chk, w, 1e-12*scale) {
			t.Fatalf("n=%d: RᵀR != W (max err scale %g)", n, scale)
		}
		if !r.IsUpperTriangular(0) {
			t.Fatalf("n=%d: R not upper triangular", n)
		}
	}
}

func TestPotrfLowerUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 80
	w := randSPD(rng, n)
	w.Set(n-1, 0, 12345) // poison the strict lower triangle
	r := w.Clone()
	if err := PotrfUpper(nil, r); err != nil {
		t.Fatal(err)
	}
	if r.At(n-1, 0) != 12345 {
		t.Fatal("PotrfUpper modified the strict lower triangle")
	}
}

func TestPotrfNotPSD(t *testing.T) {
	w := mat.Identity(4)
	w.Set(2, 2, -1)
	err := PotrfUpper(nil, w.Clone())
	var perr *NotPositiveDefiniteError
	if !errors.As(err, &perr) {
		t.Fatalf("want NotPositiveDefiniteError, got %v", err)
	}
	if perr.Index != 2 {
		t.Fatalf("breakdown index = %d, want 2", perr.Index)
	}
	if perr.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestPotrfBreakdownIndexAcrossBlocks(t *testing.T) {
	// A semidefinite matrix whose breakdown occurs past the first block.
	rng := rand.New(rand.NewSource(33))
	n := potrfBlock + 10
	b := mat.NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// Make column potrfBlock+3 a copy of column 0 => exact rank deficiency.
	dup := potrfBlock + 3
	for i := 0; i < n; i++ {
		b.Set(i, dup, b.At(i, 0))
	}
	w := mat.NewDense(n, n)
	blas.Gram(nil, w, b)
	err := PotrfUpper(nil, w)
	var perr *NotPositiveDefiniteError
	if !errors.As(err, &perr) {
		t.Fatalf("want breakdown, got %v", err)
	}
	if perr.Index < potrfBlock {
		t.Fatalf("breakdown index %d should be in a later block", perr.Index)
	}
}

func TestPotrfPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PotrfUpper(nil, mat.NewDense(3, 4)) //nolint:errcheck
}

func TestZeroLower(t *testing.T) {
	a := mat.NewDense(3, 3)
	for i := range a.Data {
		a.Data[i] = 1
	}
	ZeroLower(a)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 1.0
			if j < i {
				want = 0
			}
			if a.At(i, j) != want {
				t.Fatalf("ZeroLower at (%d,%d) = %v", i, j, a.At(i, j))
			}
		}
	}
}
