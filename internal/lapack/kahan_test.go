package lapack

// The Kahan matrix is the classic stress test for QR with column
// pivoting: an upper triangular matrix K(θ) whose columns have subtly
// graded norms. Naive norm downdating loses the grading to cancellation
// and picks wrong pivots (Drmač & Bujanović 2008, the paper's [17]);
// the LAPACK-style recomputation safeguard implemented in Geqpf/Geqp3
// must keep the factorization rank-revealing.

import (
	"math"
	"math/rand"
	"testing"

	"repro/mat"
)

// kahan builds the n×n Kahan matrix: K = diag(1, s, s², …)·(I − c·U)
// where U is strictly upper with all ones, s = sin θ, c = cos θ.
func kahan(n int, theta float64) *mat.Dense {
	s, c := math.Sin(theta), math.Cos(theta)
	k := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		d := math.Pow(s, float64(i))
		k.Set(i, i, d)
		for j := i + 1; j < n; j++ {
			k.Set(i, j, -c*d)
		}
	}
	return k
}

func TestGeqp3KahanRankRevealing(t *testing.T) {
	// σ_min of the leading (n−1) block must stay far above the smallest
	// singular value; a non-rank-revealing factorization would bury the
	// tiny direction inside R₁₁.
	for _, n := range []int{20, 40, 90} {
		k := kahan(n, 1.2)
		fac := k.Clone()
		tau := make([]float64, n)
		jpvt := make(mat.Perm, n)
		Geqp3(nil, fac, tau, jpvt)
		r := ExtractR(fac)
		// Kahan is the matrix on which QRCP's |R(n,n)| famously
		// *overestimates* σ_min, but with a working safeguard the final
		// diagonal must still fall well below the leading one (it decays
		// like sinⁿθ); an unsafeguarded downdate derails much earlier.
		last := math.Abs(r.At(n-1, n-1))
		first := math.Abs(r.At(0, 0))
		want := 4 * math.Pow(math.Sin(1.2), float64(n-1))
		if last > first*want {
			t.Fatalf("n=%d: |R(n,n)|/|R(1,1)| = %g, want ≲ %g", n, last/first, want)
		}
		// Diagonals must be non-increasing: the safeguard kept the
		// pivoting consistent.
		for j := 1; j < n; j++ {
			if math.Abs(r.At(j, j)) > math.Abs(r.At(j-1, j-1))*(1+1e-8) {
				t.Fatalf("n=%d: diagonal increased at %d", n, j)
			}
		}
	}
}

func TestGeqpfGeqp3AgreeOnKahan(t *testing.T) {
	n := 48
	k := kahan(n, 1.2)
	f1, f2 := k.Clone(), k.Clone()
	t1, t2 := make([]float64, n), make([]float64, n)
	p1, p2 := make(mat.Perm, n), make(mat.Perm, n)
	Geqpf(nil, f1, t1, p1)
	Geqp3(nil, f2, t2, p2)
	r1, r2 := ExtractR(f1), ExtractR(f2)
	// Diagonal magnitudes must agree closely even if noise-level tails
	// permute differently.
	for j := 0; j < n; j++ {
		d1, d2 := math.Abs(r1.At(j, j)), math.Abs(r2.At(j, j))
		if d1 == 0 && d2 == 0 {
			continue
		}
		if math.Abs(d1-d2) > 1e-8*(d1+d2) {
			t.Fatalf("diag %d differs: %g vs %g", j, d1, d2)
		}
	}
}

func TestGeqp3PerturbedKahanReconstruction(t *testing.T) {
	// The slightly perturbed Kahan matrix (the practical stress case from
	// the Drmač–Bujanović study) embedded in a tall matrix via random row
	// rotations: factor and verify reconstruction.
	rng := rand.New(rand.NewSource(191))
	n := 32
	k := kahan(n, 1.1)
	// Perturb the diagonal to break exact ties.
	for i := 0; i < n; i++ {
		k.Set(i, i, k.At(i, i)*(1+1e-10*rng.NormFloat64()))
	}
	m := 150
	tall := mat.NewDense(m, n)
	tall.Slice(0, n, 0, n).Copy(k)
	// Random orthogonal row mixing (Householder on a Gaussian).
	g := randMat(rng, m, m)
	gt := make([]float64, m)
	Geqrf(nil, g, gt)
	Orgqr(nil, g, gt)
	mixed := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < n; l++ { // tall has zeros below row n
				s += g.At(i, l) * tall.At(l, j)
			}
			mixed.Set(i, j, s)
		}
	}
	fac := mixed.Clone()
	tau := make([]float64, n)
	jpvt := make(mat.Perm, n)
	Geqp3(nil, fac, tau, jpvt)
	checkQRCP(t, "kahan-tall", mixed, fac, tau, jpvt, 1e-6)
}
