package lapack

import (
	"fmt"
	"math"

	"repro/mat"
)

// TrconUpper1 estimates the 1-norm condition number κ₁(R) = ‖R‖₁·‖R⁻¹‖₁
// of an upper triangular matrix in O(n²) time, using Higham's power-
// method estimator for ‖R⁻¹‖₁ (the algorithm behind LAPACK's xTRCON /
// xLACON). The estimate is a guaranteed lower bound on κ₁ and is almost
// always within a small factor of it — the right tool for cheap
// rank-confidence checks where the O(n³) Jacobi-based κ₂ is overkill.
//
// Returns +Inf for an exactly singular R.
func TrconUpper1(r *mat.Dense) float64 {
	n := r.Rows
	if r.Cols != n {
		panic(fmt.Sprintf("lapack: TrconUpper1 on %d×%d", r.Rows, r.Cols))
	}
	if n == 0 {
		return 1
	}
	for i := 0; i < n; i++ {
		if r.At(i, i) == 0 {
			return math.Inf(1)
		}
	}
	normR := r.OneNorm()
	// Higham's estimator for ‖R⁻¹‖₁.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	y := make([]float64, n)
	z := make([]float64, n)
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		// y = R⁻¹·x.
		copy(y, x)
		solveUpper(r, y)
		est = norm1Vec(y)
		// ξ = sign(y); z = R⁻ᵀ·ξ.
		for i := range z {
			if y[i] >= 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		solveUpperTrans(r, z)
		// Convergence: ‖z‖_∞ ≤ zᵀx means the current estimate is maximal.
		j, zinf := 0, 0.0
		for i, v := range z {
			if av := math.Abs(v); av > zinf {
				j, zinf = i, av
			}
		}
		ztx := 0.0
		for i := range z {
			ztx += z[i] * x[i]
		}
		if zinf <= ztx {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
	}
	return normR * est
}

// solveUpper solves R·x = b in place (back substitution).
func solveUpper(r *mat.Dense, x []float64) {
	n := len(x)
	for i := n - 1; i >= 0; i-- {
		row := r.Data[i*r.Stride : i*r.Stride+n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// solveUpperTrans solves Rᵀ·x = b in place (forward substitution).
func solveUpperTrans(r *mat.Dense, x []float64) {
	n := len(x)
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= r.At(j, i) * x[j]
		}
		x[i] = s / r.At(i, i)
	}
}

func norm1Vec(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}
