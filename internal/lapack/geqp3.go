package lapack

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// qp3Block is the panel width of the blocked QRCP.
const qp3Block = 32

// Geqp3 computes the QR factorization with column pivoting A·P = Q·R using
// the blocked BLAS-3 algorithm of Quintana-Ortí, Sun and Bischof (the
// LAPACK DGEQP3 structure): within a panel only the pivot column and pivot
// row are updated (Level 2), and the bulk of the trailing-matrix update is
// deferred to one GEMM per panel (Level 3). As the paper notes (§II-C),
// even so roughly half the flops remain in Level-2 form — which is why
// Cholesky-QR-type methods win on tall-skinny problems.
//
// Outputs follow Geqpf: reflectors + R in a, scales in tau, and jpvt maps
// position j to the original column index. The engine e bounds the
// parallel width (nil selects the default engine).
func Geqp3(e *parallel.Engine, a *mat.Dense, tau []float64, jpvt mat.Perm) {
	Geqp3Partial(e, a, tau, jpvt, min(a.Rows, a.Cols))
}

// Geqp3Partial is Geqp3 stopped after the first maxK pivot columns have
// been factored — the truncated Householder QRCP used as the baseline for
// low-rank approximation. On return the leading maxK rows of the upper
// triangle hold R₁ = [R₁₁ R₁₂] of the truncated factorization
// A·P ≈ Q₁·R₁; trailing columns beyond maxK are the updated (but
// unfactored) remainder.
func Geqp3Partial(e *parallel.Engine, a *mat.Dense, tau []float64, jpvt mat.Perm, maxK int) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if maxK < k {
		k = maxK
	}
	if k < 0 {
		panic(fmt.Sprintf("lapack: Geqp3Partial maxK %d < 0", maxK))
	}
	if len(tau) < k {
		panic(fmt.Sprintf("lapack: Geqp3 tau length %d < %d", len(tau), k))
	}
	if len(jpvt) != n {
		panic(fmt.Sprintf("lapack: Geqp3 jpvt length %d != %d", len(jpvt), n))
	}
	sp := trace.Region(trace.KernelGeqp3)
	defer sp.End()
	// QRCP flop count for k factored columns: 4mnk − 2(m+n)k² + (4/3)k³.
	trace.AddFlops(trace.KernelGeqp3,
		4*int64(m)*int64(n)*int64(k)-2*int64(m+n)*int64(k)*int64(k)+4*int64(k)*int64(k)*int64(k)/3)
	for j := range jpvt {
		jpvt[j] = j
	}
	vn1 := make([]float64, n)
	vn2 := make([]float64, n)
	for j := 0; j < n; j++ {
		vn1[j] = a.ColNorm2(j)
		vn2[j] = vn1[j]
	}
	st := &qp3State{e: e, a: a, tau: tau, jpvt: jpvt, vn1: vn1, vn2: vn2,
		colBuf: make([]float64, m), recompute: make([]bool, n)}
	for j := 0; j < k; {
		jb := min(qp3Block, k-j)
		j += st.laqps(j, jb)
	}
}

type qp3State struct {
	e         *parallel.Engine
	a         *mat.Dense
	tau       []float64
	jpvt      mat.Perm
	vn1, vn2  []float64
	colBuf    []float64
	recompute []bool
}

// laqps factors kb ≤ jb columns starting at offset j0 using the deferred
// BLAS-3 update scheme of LAPACK's DLAQPS, returning kb. The block ends
// early if a norm downdate loses accuracy; the flagged norms are
// recomputed after the trailing GEMM.
func (st *qp3State) laqps(j0, jb int) (kb int) {
	a, tau, jpvt, vn1, vn2 := st.a, st.tau, st.jpvt, st.vn1, st.vn2
	m, n := a.Rows, a.Cols
	f := mat.GetWorkspace(n-j0, jb, true)
	auxv := mat.GetFloats(jb, false)
	wrow := mat.GetFloats(n, false)
	defer mat.PutWorkspace(f)
	defer mat.PutFloats(auxv)
	defer mat.PutFloats(wrow)
	sticky := false

	k := 0
	for k < jb && !sticky {
		rk := j0 + k
		// Pivot: remaining column with largest downdated norm.
		p := rk
		for l := rk + 1; l < n; l++ {
			if vn1[l] > vn1[p] {
				p = l
			}
		}
		if p != rk {
			a.SwapCols(rk, p)
			f.SwapRows(p-j0, k)
			jpvt.Swap(rk, p)
			vn1[rk], vn1[p] = vn1[p], vn1[rk]
			vn2[rk], vn2[p] = vn2[p], vn2[rk]
		}
		// Apply the block's previous reflectors to the pivot column:
		// A(rk:m, rk) −= A(rk:m, j0:j0+k) · F(k, 0:k)ᵀ.
		if k > 0 {
			frow := f.Row(k)[:k]
			for i := rk; i < m; i++ {
				arow := a.Data[i*a.Stride+j0 : i*a.Stride+j0+k]
				s := 0.0
				for l, fv := range frow {
					s += arow[l] * fv
				}
				a.Data[i*a.Stride+rk] -= s
			}
		}
		// Generate the Householder reflector on the pivot column.
		v := st.colBuf[:m-rk]
		gatherCol(a, rk, rk, v)
		beta, t := Larfg(v[0], v[1:])
		tau[rk] = t
		v[0] = 1
		scatterCol(a, rk+1, rk, v[1:])
		a.Set(rk, rk, 1) // temporarily expose v₀ = 1 for the row update
		// F(k+1:, k) = τ · A(rk:m, rk+1:n)ᵀ · v  — the Level-2 half.
		if rk+1 < n {
			w := wrow[:n-rk-1]
			blas.Gemv(st.e, blas.Trans, t, a.Slice(rk, m, rk+1, n), v, 0, w)
			for l := rk + 1; l < n; l++ {
				f.Set(l-j0, k, w[l-rk-1])
			}
		}
		for l := 0; l <= k; l++ {
			f.Set(l, k, 0)
		}
		// Incremental F update:
		// F(:, k) −= τ · F(:, 0:k) · (A(rk:m, j0:j0+k)ᵀ · v).
		if k > 0 {
			blas.Gemv(st.e, blas.Trans, -t, a.Slice(rk, m, j0, j0+k), v, 0, auxv[:k])
			for l := 0; l < n-j0; l++ {
				frow := f.Data[l*f.Stride : l*f.Stride+k]
				s := 0.0
				for q, av := range auxv[:k] {
					s += frow[q] * av
				}
				f.Data[l*f.Stride+k] += s
			}
		}
		// Update the pivot row so norm downdating sees current values:
		// A(rk, rk+1:n) −= A(rk, j0:rk+1) · F(rk+1:n, 0:k+1)ᵀ.
		if rk+1 < n {
			arow := a.Data[rk*a.Stride+j0 : rk*a.Stride+rk+1]
			for jj := rk + 1; jj < n; jj++ {
				frow := f.Data[(jj-j0)*f.Stride : (jj-j0)*f.Stride+k+1]
				s := 0.0
				for l, fv := range frow {
					s += arow[l] * fv
				}
				a.Data[rk*a.Stride+jj] -= s
			}
		}
		a.Set(rk, rk, beta)
		// Downdate partial norms; flag columns whose downdate cancelled.
		for jj := rk + 1; jj < n; jj++ {
			if vn1[jj] == 0 {
				continue
			}
			r := math.Abs(a.At(rk, jj)) / vn1[jj]
			temp := (1 + r) * (1 - r)
			if temp < 0 {
				temp = 0
			}
			ratio := vn1[jj] / vn2[jj]
			if temp*ratio*ratio <= tol3z {
				st.recompute[jj] = true
				sticky = true
			} else {
				vn1[jj] *= math.Sqrt(temp)
			}
		}
		k++
	}
	kb = k
	rk := j0 + kb // first unfactored row/column
	// Deferred Level-3 trailing update: A(rk:m, rk:n) −= V · F(kb:, 0:kb)ᵀ.
	if rk < n && rk < m {
		vpanel := a.Slice(rk, m, j0, j0+kb)
		fpart := f.Slice(kb, n-j0, 0, kb)
		trailing := a.Slice(rk, m, rk, n)
		blas.Gemm(st.e, blas.NoTrans, blas.Trans, -1, vpanel, fpart, 1, trailing)
	}
	// Recompute the flagged norms against the fully updated trailing matrix.
	if sticky {
		for jj := rk; jj < n; jj++ {
			if st.recompute[jj] {
				vn1[jj] = partialColNorm(a, rk, jj)
				vn2[jj] = vn1[jj]
				st.recompute[jj] = false
			}
		}
	}
	return kb
}
