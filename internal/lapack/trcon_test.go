package lapack

import (
	"math"
	"math/rand"
	"testing"

	"repro/mat"
)

func TestTrconDiagonal(t *testing.T) {
	r := mat.NewDense(3, 3)
	r.Set(0, 0, 10)
	r.Set(1, 1, 1)
	r.Set(2, 2, 0.1)
	// κ₁ of a diagonal matrix is exactly max/min = 100.
	got := TrconUpper1(r)
	if math.Abs(got-100) > 1e-10 {
		t.Fatalf("κ₁ = %v, want 100", got)
	}
}

func TestTrconSingular(t *testing.T) {
	r := mat.Identity(4)
	r.Set(2, 2, 0)
	if got := TrconUpper1(r); !math.IsInf(got, 1) {
		t.Fatalf("singular κ₁ = %v, want +Inf", got)
	}
	if got := TrconUpper1(mat.NewDense(0, 0)); got != 1 {
		t.Fatalf("empty κ₁ = %v, want 1", got)
	}
}

func TestTrconTracksJacobiCondition(t *testing.T) {
	// The 1-norm estimate must stay within the standard n-factor
	// equivalence of the Jacobi 2-norm condition number.
	rng := rand.New(rand.NewSource(321))
	for _, n := range []int{5, 20, 60} {
		for _, grade := range []float64{1, 1e-3, 1e-8} {
			r := mat.NewDense(n, n)
			for i := 0; i < n; i++ {
				r.Set(i, i, math.Pow(grade, float64(i)/float64(n-1))*(1+0.1*rng.Float64()))
				for j := i + 1; j < n; j++ {
					r.Set(i, j, 0.3*rng.NormFloat64()*r.At(i, i))
				}
			}
			est := TrconUpper1(r)
			k2 := Cond2(r)
			nf := float64(n)
			if est > nf*k2*1.01 || est < k2/(nf*1.01) {
				t.Fatalf("n=%d grade=%g: κ₁ est %g outside [κ₂/n, n·κ₂] = [%g, %g]",
					n, grade, est, k2/nf, nf*k2)
			}
		}
	}
}

func TestTrconIsLowerBoundOnExactK1(t *testing.T) {
	// Against an exactly computed κ₁ via explicit inverse, the estimator
	// must never exceed it (Higham's estimate is a lower bound).
	rng := rand.New(rand.NewSource(322))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		r := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			r.Set(i, i, 0.5+rng.Float64())
			for j := i + 1; j < n; j++ {
				r.Set(i, j, rng.NormFloat64())
			}
		}
		// Explicit inverse by n solves.
		inv := mat.Identity(n)
		for j := 0; j < n; j++ {
			col := inv.Col(j, nil)
			solveUpper(r, col)
			inv.SetCol(j, col)
		}
		exact := r.OneNorm() * inv.OneNorm()
		est := TrconUpper1(r)
		if est > exact*(1+1e-10) {
			t.Fatalf("estimate %g exceeds exact κ₁ %g", est, exact)
		}
		if est < exact/100 {
			t.Fatalf("estimate %g far below exact κ₁ %g", est, exact)
		}
	}
}

func TestTrconPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrconUpper1(mat.NewDense(2, 3))
}
