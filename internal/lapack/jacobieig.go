package lapack

import (
	"fmt"
	"math"
	"sort"

	"repro/mat"
)

// JacobiEigSym computes the full eigendecomposition A = V·diag(λ)·Vᵀ of a
// symmetric matrix by the cyclic two-sided Jacobi method. Eigenvalues are
// returned in descending order with matching eigenvector columns. Slow
// (O(n³) per sweep) but highly accurate — it backs the Rayleigh–Ritz step
// of the subspace-iteration application, where n is a small block size.
func JacobiEigSym(a *mat.Dense) (vals []float64, vecs *mat.Dense) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("lapack: JacobiEigSym on %d×%d", n, a.Cols))
	}
	w := a.Clone()
	v := mat.Identity(n)
	const (
		maxSweeps = 60
		tol       = 1e-14
	)
	off := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.At(i, j)
				s += 2 * x * x
			}
		}
		return math.Sqrt(s)
	}
	normA := w.FrobeniusNorm()
	if normA == 0 {
		vals = make([]float64, n)
		return vals, v
	}
	for sweep := 0; sweep < maxSweeps && off() > tol*normA; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol*normA/float64(n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				zeta := (aqq - app) / (2 * apq)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// W := Jᵀ·W·J on rows/columns p, q.
				for i := 0; i < n; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < n; i++ {
					wpi, wqi := w.At(p, i), w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{w.At(i, i), i}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].val > ps[j].val })
	vals = make([]float64, n)
	vecs = mat.NewDense(n, n)
	for j, p := range ps {
		vals[j] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v.At(i, p.idx))
		}
	}
	return vals, vecs
}
