package lapack

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/mat"
)

// tol3z is the LAPACK threshold (√ε) that decides when the incremental
// column-norm downdate has lost too much accuracy and the norm must be
// recomputed — the Drmač–Bujanović safeguard against wrong pivots.
var tol3z = math.Sqrt(mat.Eps)

// Geqpf computes the QR factorization with column pivoting A·P = Q·R using
// unblocked Level-2 Householder transformations (DGEQPF). This is the
// conventional greedy algorithm of the paper's Algorithm 1: at each step
// the remaining column of maximum 2-norm is swapped in, eliminated, and
// the trailing column norms are downdated (with explicit recomputation
// when cancellation makes the downdate unreliable).
//
// On return a holds R in its upper triangle and the reflectors below, tau
// the reflector scales, and jpvt (length n, overwritten) maps position j
// to the original column index: (A·P)(:, j) = A(:, jpvt[j]).
func Geqpf(e *parallel.Engine, a *mat.Dense, tau []float64, jpvt mat.Perm) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) < k {
		panic(fmt.Sprintf("lapack: Geqpf tau length %d < %d", len(tau), k))
	}
	if len(jpvt) != n {
		panic(fmt.Sprintf("lapack: Geqpf jpvt length %d != %d", len(jpvt), n))
	}
	for j := range jpvt {
		jpvt[j] = j
	}
	vn1 := make([]float64, n)
	vn2 := make([]float64, n)
	for j := 0; j < n; j++ {
		vn1[j] = a.ColNorm2(j)
		vn2[j] = vn1[j]
	}
	colBuf := make([]float64, m)
	work := make([]float64, n)
	for j := 0; j < k; j++ {
		// Greedy pivot: remaining column with the largest (downdated) norm.
		p := j
		for l := j + 1; l < n; l++ {
			if vn1[l] > vn1[p] {
				p = l
			}
		}
		if p != j {
			a.SwapCols(j, p)
			jpvt.Swap(j, p)
			vn1[j], vn1[p] = vn1[p], vn1[j]
			vn2[j], vn2[p] = vn2[p], vn2[j]
		}
		v := colBuf[:m-j]
		gatherCol(a, j, j, v)
		beta, t := Larfg(v[0], v[1:])
		tau[j] = t
		v[0] = 1
		if j+1 < n {
			trailing := a.Slice(j, m, j+1, n)
			applyReflectorLeft(e, t, v, trailing, work)
		}
		a.Set(j, j, beta)
		scatterCol(a, j+1, j, v[1:])
		downdateNorms(a, j, j+1, n, vn1, vn2)
	}
}

// downdateNorms updates the partial column norms vn1[l] for columns
// [lo, hi) after row `row` of the trailing matrix has been eliminated,
// recomputing from scratch when the downdate formula would cancel.
func downdateNorms(a *mat.Dense, row, lo, hi int, vn1, vn2 []float64) {
	for l := lo; l < hi; l++ {
		if vn1[l] == 0 {
			continue
		}
		r := math.Abs(a.At(row, l)) / vn1[l]
		temp := (1 + r) * (1 - r)
		if temp < 0 {
			temp = 0
		}
		ratio := vn1[l] / vn2[l]
		temp2 := temp * ratio * ratio
		if temp2 <= tol3z {
			// Cancellation: recompute the norm of rows below `row`.
			vn1[l] = partialColNorm(a, row+1, l)
			vn2[l] = vn1[l]
		} else {
			vn1[l] *= math.Sqrt(temp)
		}
	}
}

func partialColNorm(a *mat.Dense, i0, j int) float64 {
	scale, ssq := 0.0, 1.0
	for i := i0; i < a.Rows; i++ {
		v := a.Data[i*a.Stride+j]
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}
