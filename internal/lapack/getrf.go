package lapack

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/parallel"
	"repro/mat"
)

// luBlock is the panel width of the blocked LU factorization.
const luBlock = 32

// SingularError reports an exactly singular pivot during LU factorization.
type SingularError struct {
	Index int
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("lapack: exactly singular LU pivot %d", e.Index)
}

// Getrf computes the LU factorization with partial (row) pivoting of an
// m×n matrix (m ≥ n): P·A = L·U with L m×n unit lower trapezoidal and U
// n×n upper triangular. On return a holds L (strictly below the diagonal,
// unit diagonal implicit) and U (upper triangle); ipiv records the row
// interchanges LAPACK-style: at step k, row k was swapped with row
// ipiv[k] ≥ k.
//
// This is the substrate of LU-Cholesky QR (Terao, Ozaki, Ogita 2020 — the
// paper's reference [9]), which uses L as a preconditioner for Cholesky QR.
func Getrf(e *parallel.Engine, a *mat.Dense, ipiv []int) error {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lapack: Getrf needs m ≥ n, got %d×%d", m, n))
	}
	if len(ipiv) < n {
		panic(fmt.Sprintf("lapack: Getrf ipiv length %d < %d", len(ipiv), n))
	}
	for k0 := 0; k0 < n; k0 += luBlock {
		kb := min(luBlock, n-k0)
		// Factor the panel a(k0:m, k0:k0+kb) with partial pivoting.
		for k := k0; k < k0+kb; k++ {
			// Pivot: largest |a(i,k)| for i ≥ k.
			p := k
			pv := math.Abs(a.At(k, k))
			for i := k + 1; i < m; i++ {
				if av := math.Abs(a.At(i, k)); av > pv {
					p, pv = i, av
				}
			}
			ipiv[k] = p
			if pv == 0 {
				return &SingularError{Index: k}
			}
			if p != k {
				a.SwapRows(k, p)
			}
			// Scale the column below the pivot and update the panel.
			inv := 1 / a.At(k, k)
			for i := k + 1; i < m; i++ {
				lik := a.At(i, k) * inv
				a.Set(i, k, lik)
				if lik == 0 {
					continue
				}
				row := a.Data[i*a.Stride : i*a.Stride+k0+kb]
				krow := a.Data[k*a.Stride : k*a.Stride+k0+kb]
				for j := k + 1; j < k0+kb; j++ {
					row[j] -= lik * krow[j]
				}
			}
		}
		if k0+kb >= n {
			break
		}
		// Row swaps were applied to full rows during the panel
		// factorization, so the trailing columns are already permuted.
		// U panel: solve the unit-lower triangular system
		// L(k0:k0+kb, k0:k0+kb) · U = A(k0:k0+kb, k0+kb:n) in place.
		for k := k0; k < k0+kb; k++ {
			krow := a.Data[k*a.Stride+k0+kb : k*a.Stride+n]
			for i := k + 1; i < k0+kb; i++ {
				lik := a.At(i, k)
				if lik == 0 {
					continue
				}
				irow := a.Data[i*a.Stride+k0+kb : i*a.Stride+n]
				for j := range irow {
					irow[j] -= lik * krow[j]
				}
			}
		}
		// Trailing update: A₂₂ −= L₂₁·U₁₂ (Level 3).
		l21 := a.Slice(k0+kb, m, k0, k0+kb)
		u12 := a.Slice(k0, k0+kb, k0+kb, n)
		a22 := a.Slice(k0+kb, m, k0+kb, n)
		blas.Gemm(e, blas.NoTrans, blas.NoTrans, -1, l21, u12, 1, a22)
	}
	return nil
}

// ExtractLU splits a Getrf result into explicit L (m×n, unit diagonal)
// and U (n×n) factors.
func ExtractLU(a *mat.Dense) (l, u *mat.Dense) {
	m, n := a.Rows, a.Cols
	l = mat.NewDense(m, n)
	u = mat.NewDense(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i > j:
				l.Set(i, j, a.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, a.At(i, j))
			default:
				if i < n {
					u.Set(i, j, a.At(i, j))
				}
			}
		}
	}
	return l, u
}

// ApplyIpiv applies the recorded row interchanges to b in factorization
// order (forward = true) or reverse order (undoing them).
func ApplyIpiv(b *mat.Dense, ipiv []int, forward bool) {
	if forward {
		for k := 0; k < len(ipiv); k++ {
			if ipiv[k] != k {
				b.SwapRows(k, ipiv[k])
			}
		}
		return
	}
	for k := len(ipiv) - 1; k >= 0; k-- {
		if ipiv[k] != k {
			b.SwapRows(k, ipiv[k])
		}
	}
}
