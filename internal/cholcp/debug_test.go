//go:build debugchecks

package cholcp

import (
	"math"
	"testing"

	"repro/mat"
)

func TestPCholCPNaNInputPanicsUnderDebugChecks(t *testing.T) {
	w := mat.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		w.Set(i, i, 1)
	}
	w.Set(2, 1, math.NaN())
	defer func() {
		if recover() == nil {
			t.Fatal("PCholCP on NaN input: expected debugchecks panic")
		}
	}()
	PCholCP(nil, w, 0)
}
