// Package cholcp implements Cholesky factorization with complete (diagonal)
// pivoting, including the paper's partial variant P-Chol-CP (Algorithm 3):
// the factorization of the Gram matrix W = AᵀA stops as soon as the
// largest remaining diagonal falls below W(1,1)·ε², because — as the
// paper's preliminary experiments (Fig. 1) show — pivot selections made
// past that point can no longer be trusted in floating-point arithmetic.
package cholcp

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/mat"
)

// Result is the output of a (partial) pivoted Cholesky factorization
//
//	Pᵀ·W·P = Rᵀ·R + W′   (Eq. 6 of the paper)
//
// where the leading NPiv×NPiv block of R is a genuine Cholesky factor and
// the trailing (n−NPiv) diagonal of R is filled with the identity, so R is
// always invertible and can be applied with a triangular solve.
type Result struct {
	// R is the n×n upper triangular factor; rows NPiv..n hold the
	// identity padding of Algorithm 3 line 14.
	R *mat.Dense
	// Perm maps position j to the original index: (W·P)(:,j) = W(:,Perm[j]).
	Perm mat.Perm
	// NPiv is n′, the number of reliably pivoted columns.
	NPiv int
	// Breakdown reports that the factorization stopped because the best
	// remaining diagonal was ≤ 0 (loss of positive semidefiniteness to
	// roundoff) rather than by the ε tolerance or by completing all n
	// columns.
	Breakdown bool
}

// PCholCP runs the partial Cholesky factorization with complete pivoting
// (Algorithm 3) on symmetric W with stopping tolerance eps (the paper's ε;
// the recommended value for Ite-CholQR-CP is 1e-5). W is not modified.
//
// eps = 0 reproduces the paper's "ε = 0" variant, which only stops to
// avoid outright breakdown (a non-positive pivot diagonal). The engine e
// bounds the parallel width of the trailing downdates (nil selects the
// default engine).
func PCholCP(e *parallel.Engine, w *mat.Dense, eps float64) Result {
	return PCholCPMax(e, w, eps, w.Rows)
}

// PCholCPMax is PCholCP with an additional cap on the number of pivots
// factored, used by truncated QRCP to stop exactly at the requested rank.
func PCholCPMax(e *parallel.Engine, w *mat.Dense, eps float64, maxPiv int) Result {
	if w.Rows != w.Cols {
		panic(fmt.Sprintf("cholcp: PCholCP on %d×%d", w.Rows, w.Cols))
	}
	n := w.Rows
	if maxPiv > n {
		maxPiv = n
	}
	if debugChecksEnabled {
		debugCheckFinite("PCholCP input W", w)
	}
	sp := trace.Region(trace.KernelPCholCP)
	defer sp.End()
	work := w.Clone()
	r := mat.NewDense(n, n)
	perm := mat.IdentityPerm(n)
	res := Result{R: r, Perm: perm}

	var w11 float64 // diagonal of the first pivot (the paper's W(1,1))
	for k := 0; k < maxPiv; k++ {
		// Select the largest remaining diagonal.
		p := k
		for l := k + 1; l < n; l++ {
			if work.At(l, l) > work.At(p, p) {
				p = l
			}
		}
		wpp := work.At(p, p)
		if k == 0 {
			w11 = wpp
		}
		if wpp <= 0 || math.IsNaN(wpp) {
			res.Breakdown = true
			trace.Inc(trace.CtrBreakdowns)
			break
		}
		if k > 0 && wpp < w11*eps*eps {
			trace.Inc(trace.CtrEpsExits)
			break
		}
		if p != k {
			symSwap(work, k, p)
			r.SwapCols(k, p) // only rows < k are populated; full swap is safe
			perm.Swap(k, p)
		}
		rkk := math.Sqrt(work.At(k, k))
		r.Set(k, k, rkk)
		inv := 1 / rkk
		rrow := r.Data[k*r.Stride : k*r.Stride+n]
		wrow := work.Data[k*work.Stride : k*work.Stride+n]
		for j := k + 1; j < n; j++ {
			rrow[j] = wrow[j] * inv
		}
		// Trailing symmetric rank-1 downdate:
		// W(k+1:, k+1:) −= R(k, k+1:)ᵀ·R(k, k+1:). Rows are independent,
		// so wide trailing blocks fan out across the engine's workers
		// (bitwise deterministic regardless of the partition).
		downdate := func(lo, hi int) {
			for i := k + 1 + lo; i < k+1+hi; i++ {
				ri := rrow[i]
				if ri == 0 {
					continue
				}
				wi := work.Data[i*work.Stride : i*work.Stride+n]
				for j := k + 1; j < n; j++ {
					wi[j] -= ri * rrow[j]
				}
			}
		}
		if rem := n - k - 1; rem*rem >= downdateParallelElems {
			e.For(rem, downdateMinRows, downdate)
		} else {
			downdate(0, rem)
		}
		res.NPiv = k + 1
	}
	// Pad the unfactored trailing block with the identity (line 14).
	for k := res.NPiv; k < n; k++ {
		r.Set(k, k, 1)
	}
	trace.Add(trace.CtrPivotsFixed, int64(res.NPiv))
	trace.AddFlops(trace.KernelPCholCP, int64(res.NPiv)*int64(n)*int64(n)/3)
	return res
}

// CholCP runs the classical Cholesky factorization with complete pivoting
// (no tolerance): it factors until completion or until positive
// semidefiniteness is lost to roundoff. Equivalent to PCholCP(e, w, 0).
func CholCP(e *parallel.Engine, w *mat.Dense) Result { return PCholCP(e, w, 0) }

// downdateParallelElems is the minimum trailing-block element count
// before the rank-1 downdate fans out across cores, and downdateMinRows
// the smallest per-worker row grain; below these the dispatch overhead
// exceeds the memory traffic it hides.
const (
	downdateParallelElems = 1 << 15
	downdateMinRows       = 64
)

// symSwap applies the symmetric permutation that exchanges index k and p
// of a full (mirrored) symmetric matrix: rows k,p and columns k,p.
func symSwap(w *mat.Dense, k, p int) {
	w.SwapRows(k, p)
	w.SwapCols(k, p)
}
