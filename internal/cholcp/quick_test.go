package cholcp

// Property-based tests on the P-Chol-CP invariants (Eq. 5 and Eq. 6).

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/mat"
)

func TestQuickPCholCPInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, epsExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%16
		m := n + int(mRaw)%60
		eps := math.Pow(10, -float64(1+epsExp%8))
		w := gram(rng, m, n, func(j int) float64 { return math.Pow(10, -float64(j%7)) })
		res := PCholCP(nil, w, eps)
		if !res.Perm.IsValid() {
			t.Logf("seed=%d: invalid perm", seed)
			return false
		}
		if !res.R.IsUpperTriangular(0) {
			t.Logf("seed=%d: R not upper", seed)
			return false
		}
		if res.NPiv < 0 || res.NPiv > n {
			return false
		}
		// Stopping rule (Eq. 5): all factored diagonals satisfy
		// R(k,k) ≥ R(0,0)·ε (up to roundoff).
		if res.NPiv > 0 {
			r00 := res.R.At(0, 0)
			for k := 1; k < res.NPiv; k++ {
				if res.R.At(k, k) < r00*eps*(1-1e-12) {
					t.Logf("seed=%d: diagonal %d below tolerance", seed, k)
					return false
				}
			}
			// Diagonals of R are non-increasing (greedy diagonal pivoting).
			for k := 1; k < res.NPiv; k++ {
				if res.R.At(k, k) > res.R.At(k-1, k-1)*(1+1e-12) {
					t.Logf("seed=%d: diagonal increased at %d", seed, k)
					return false
				}
			}
		}
		// Eq. (6): leading NPiv rows of PᵀWP equal those of RᵀR.
		rtr := mat.NewDense(n, n)
		blas.Gemm(nil, blas.Trans, blas.NoTrans, 1, res.R, res.R, 0, rtr)
		scale := w.MaxAbs() + 1
		for i := 0; i < res.NPiv; i++ {
			for j := 0; j < n; j++ {
				want := w.At(res.Perm[i], res.Perm[j])
				if d := math.Abs(rtr.At(i, j) - want); d > 1e-10*scale {
					t.Logf("seed=%d: Eq.6 violated at (%d,%d): %g", seed, i, j, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickPCholCPMaxCap(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		w := gram(rng, 50, n, nil)
		cap := 1 + int(capRaw)%n
		res := PCholCPMax(nil, w, 0, cap)
		if res.NPiv > cap {
			return false
		}
		// Well-conditioned Gram: the cap is the binding constraint.
		return res.NPiv == cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
