package cholcp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/mat"
)

// gram returns BᵀB for a random m×n B, optionally with graded columns.
func gram(rng *rand.Rand, m, n int, colScale func(j int) float64) *mat.Dense {
	b := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 1.0
			if colScale != nil {
				s = colScale(j)
			}
			b.Set(i, j, s*rng.NormFloat64())
		}
	}
	w := mat.NewDense(n, n)
	blas.Gram(nil, w, b)
	return w
}

// reconstruct computes Rᵀ·R + paddingᵀpadding correction and compares with
// Pᵀ·W·P on the leading npiv block and coupling block (Eq. 6).
func checkFactorization(t *testing.T, w *mat.Dense, res Result) {
	t.Helper()
	n := w.Rows
	if !res.Perm.IsValid() {
		t.Fatalf("invalid perm %v", res.Perm)
	}
	if !res.R.IsUpperTriangular(0) {
		t.Fatal("R not upper triangular")
	}
	// PᵀWP: element (i,j) = W(perm[i], perm[j]).
	pwp := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pwp.Set(i, j, w.At(res.Perm[i], res.Perm[j]))
		}
	}
	rtr := mat.NewDense(n, n)
	blas.Gemm(nil, blas.Trans, blas.NoTrans, 1, res.R, res.R, 0, rtr)
	scale := w.MaxAbs()
	np := res.NPiv
	// Leading block and coupling block must match exactly (up to roundoff):
	// (PᵀWP)(0:np, :) == (RᵀR)(0:np, :) because W′ is zero there.
	for i := 0; i < np; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(pwp.At(i, j) - rtr.At(i, j)); d > 1e-12*scale {
				t.Fatalf("Eq.(6) violated at (%d,%d): |Δ| = %g", i, j, d)
			}
		}
	}
}

func TestCholCPFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 5, 20, 64} {
		w := gram(rng, n+10, n, nil)
		res := CholCP(nil, w)
		if res.NPiv != n {
			t.Fatalf("n=%d: NPiv = %d, want full %d", n, res.NPiv, n)
		}
		if res.Breakdown {
			t.Fatal("unexpected breakdown for well-conditioned Gram matrix")
		}
		checkFactorization(t, w, res)
	}
}

func TestCholCPPivotOrderIsDiagonalGreedy(t *testing.T) {
	// A diagonal W: pivots must come out in decreasing diagonal order.
	w := mat.NewDense(4, 4)
	diag := []float64{2, 8, 1, 4}
	for i, v := range diag {
		w.Set(i, i, v)
	}
	res := CholCP(nil, w)
	want := mat.Perm{1, 3, 0, 2}
	for j, v := range want {
		if res.Perm[j] != v {
			t.Fatalf("perm = %v, want %v", res.Perm, want)
		}
	}
	// R diagonal should be sqrt of sorted diagonals.
	for j, v := range []float64{8, 4, 2, 1} {
		if math.Abs(res.R.At(j, j)-math.Sqrt(v)) > 1e-14 {
			t.Fatalf("R diag %d = %v, want sqrt(%v)", j, res.R.At(j, j), v)
		}
	}
}

func TestPCholCPToleranceStops(t *testing.T) {
	// Gram of a matrix with strongly graded columns: with ε = 1e-3 the
	// factorization must stop once diagonals fall below w11·ε².
	rng := rand.New(rand.NewSource(72))
	n := 10
	w := gram(rng, 200, n, func(j int) float64 { return math.Pow(10, -float64(j)) })
	res := PCholCP(nil, w, 1e-3)
	if res.NPiv == 0 || res.NPiv >= n {
		t.Fatalf("NPiv = %d, want partial stop in (0,%d)", res.NPiv, n)
	}
	if res.Breakdown {
		t.Fatal("tolerance stop must not be reported as breakdown")
	}
	// Stopping rule: every factored diagonal of R (squared) ≥ w11·ε²;
	// r(k,k)/r(0,0) ≥ ε for k < NPiv (Eq. 5).
	r00 := res.R.At(0, 0)
	for k := 0; k < res.NPiv; k++ {
		if res.R.At(k, k)/r00 < 1e-3*0.999 {
			t.Fatalf("factored diagonal %d below tolerance: %g", k, res.R.At(k, k)/r00)
		}
	}
	checkFactorization(t, w, res)
	// Trailing padding must be exactly the identity.
	for k := res.NPiv; k < n; k++ {
		if res.R.At(k, k) != 1 {
			t.Fatalf("trailing diagonal %d = %v, want 1", k, res.R.At(k, k))
		}
		for j := k + 1; j < n; j++ {
			if res.R.At(k, j) != 0 {
				t.Fatalf("trailing row %d not identity", k)
			}
		}
	}
}

func TestPCholCPBreakdown(t *testing.T) {
	// Exactly rank-deficient W: after r columns the remaining diagonal is
	// ~0 or slightly negative; ε=0 must stop by breakdown, not divide by 0.
	rng := rand.New(rand.NewSource(73))
	m, n, rank := 100, 8, 3
	b := mat.NewDense(m, n)
	base := mat.NewDense(m, rank)
	for i := range base.Data {
		base.Data[i] = rng.NormFloat64()
	}
	for j := 0; j < n; j++ {
		coef := make([]float64, rank)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < rank; l++ {
				s += base.At(i, l) * coef[l]
			}
			b.Set(i, j, s)
		}
	}
	w := mat.NewDense(n, n)
	blas.Gram(nil, w, b)
	res := PCholCP(nil, w, 0)
	if res.NPiv < rank {
		t.Fatalf("NPiv = %d, want ≥ rank %d", res.NPiv, rank)
	}
	// With ε = 0 a few extra columns of roundoff noise may get factored
	// before the diagonal finally turns non-positive; their diagonals must
	// be at noise level relative to the first pivot.
	lead := res.R.At(0, 0)
	for k := rank; k < res.NPiv; k++ {
		if res.R.At(k, k) > 1e-6*lead {
			t.Fatalf("diagonal %d = %g not at noise level (lead %g)", k, res.R.At(k, k), lead)
		}
	}
	for _, v := range res.R.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite entries in R after breakdown stop")
		}
	}
}

func TestPCholCPZeroMatrix(t *testing.T) {
	w := mat.NewDense(5, 5)
	res := PCholCP(nil, w, 1e-5)
	if res.NPiv != 0 || !res.Breakdown {
		t.Fatalf("zero matrix: NPiv=%d breakdown=%v, want 0/true", res.NPiv, res.Breakdown)
	}
	// R must be the identity (pure padding).
	if !mat.EqualApprox(res.R, mat.Identity(5), 0) {
		t.Fatal("R of zero matrix must be identity padding")
	}
}

func TestPCholCPDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	w := gram(rng, 50, 6, nil)
	orig := w.Clone()
	PCholCP(nil, w, 1e-5)
	if !mat.EqualApprox(w, orig, 0) {
		t.Fatal("PCholCP modified its input")
	}
}

func TestPCholCPMatchesUnpivotedOnIdentityGram(t *testing.T) {
	// For W = I, no pivoting happens and R = I.
	res := PCholCP(nil, mat.Identity(6), 1e-5)
	if res.NPiv != 6 {
		t.Fatalf("NPiv = %d, want 6", res.NPiv)
	}
	if !mat.EqualApprox(res.R, mat.Identity(6), 1e-15) {
		t.Fatal("R != I for W = I")
	}
	for j, v := range res.Perm {
		if v != j {
			t.Fatalf("perm should be identity, got %v", res.Perm)
		}
	}
}

func TestPCholCPNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PCholCP(nil, mat.NewDense(3, 4), 0)
}

func TestPCholCPEpsilonMonotone(t *testing.T) {
	// As ε decreases the stopping rule only gets weaker, so the number of
	// factored columns must be non-decreasing.
	rng := rand.New(rand.NewSource(75))
	w := gram(rng, 300, 12, func(j int) float64 { return math.Pow(10, -float64(j)/2) })
	prev := 0
	for _, eps := range []float64{1e-1, 1e-3, 1e-6, 1e-12, 0} {
		res := PCholCP(nil, w, eps)
		if res.NPiv < prev {
			t.Fatalf("NPiv not monotone in ε: eps=%g gives %d < previous %d", eps, res.NPiv, prev)
		}
		prev = res.NPiv
	}
}
