package cholcp

import (
	"fmt"

	"repro/mat"
)

// debugCheckFinite panics when w contains a NaN or ±Inf. The Cholesky
// contract assumes W = AᵀA for finite A; a non-finite W means an upstream
// kernel already produced garbage, and under the debugchecks build tag we
// fail loudly at the boundary instead of reporting it later as a
// breakdown (P-Chol-CP's graceful handling remains the production-build
// behavior). Callers gate this behind debugChecksEnabled so normal builds
// pay nothing.
func debugCheckFinite(ctx string, w *mat.Dense) {
	if i, j, found := mat.FirstNonFinite(w); found {
		panic(fmt.Sprintf("cholcp: debugchecks: %s contains non-finite value at (%d,%d)", ctx, i, j))
	}
}
